let frame ?title ?(xlabel = "") ?(ylabel = "") grid width height =
  let b = Buffer.create (width * height * 2) in
  (match title with
  | Some t ->
      Buffer.add_string b t;
      Buffer.add_char b '\n'
  | None -> ());
  if ylabel <> "" then begin
    Buffer.add_string b ylabel;
    Buffer.add_char b '\n'
  end;
  for row = height - 1 downto 0 do
    Buffer.add_char b '|';
    for col = 0 to width - 1 do
      Buffer.add_char b grid.(row).(col)
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.add_char b '+';
  Buffer.add_string b (String.make width '-');
  Buffer.add_char b '\n';
  if xlabel <> "" then begin
    Buffer.add_char b ' ';
    Buffer.add_string b xlabel;
    Buffer.add_char b '\n'
  end;
  Buffer.contents b

let bounds pts f =
  Array.fold_left
    (fun (lo, hi) p ->
      let v = f p in
      (Stdlib.min lo v, Stdlib.max hi v))
    (infinity, neg_infinity) pts

let cell v lo hi n =
  if hi <= lo then 0
  else begin
    let idx = int_of_float ((v -. lo) /. (hi -. lo) *. float_of_int (n - 1)) in
    Stdlib.max 0 (Stdlib.min (n - 1) idx)
  end

let scatter ?(width = 72) ?(height = 20) ?xlabel ?ylabel ?title pts =
  let grid = Array.make_matrix height width ' ' in
  if Array.length pts > 0 then begin
    let xlo, xhi = bounds pts (fun (x, _, _) -> x) in
    let ylo, yhi = bounds pts (fun (_, y, _) -> y) in
    Array.iter
      (fun (x, y, glyph) ->
        let col = cell x xlo xhi width and row = cell y ylo yhi height in
        grid.(row).(col) <- glyph)
      pts
  end;
  frame ?title ?xlabel ?ylabel grid width height

let ecdf_lines ?(width = 72) ?(height = 20) ?(log_x = false) ?title series =
  let grid = Array.make_matrix height width ' ' in
  let tx x = if log_x then (if x <= 0.0 then -1.0 else log10 x) else x in
  let all_x =
    List.concat_map
      (fun (_, _, pts) -> Array.to_list (Array.map (fun (x, _) -> tx x) pts))
      series
  in
  (match all_x with
  | [] -> ()
  | x0 :: rest ->
      let xlo = List.fold_left Stdlib.min x0 rest in
      let xhi = List.fold_left Stdlib.max x0 rest in
      List.iter
        (fun (_, glyph, pts) ->
          Array.iter
            (fun (x, p) ->
              let col = cell (tx x) xlo xhi width in
              let row = cell p 0.0 1.0 height in
              grid.(row).(col) <- glyph)
            pts)
        series);
  let body = frame ?title grid width height in
  let legend =
    series
    |> List.map (fun (name, glyph, _) -> Printf.sprintf "  %c = %s" glyph name)
    |> String.concat "\n"
  in
  body ^ legend ^ "\n"

let histogram ?(width = 50) ?title items =
  let b = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string b t;
      Buffer.add_char b '\n'
  | None -> ());
  let label_w =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 items
  in
  let max_v = List.fold_left (fun acc (_, v) -> Stdlib.max acc v) 1 items in
  List.iter
    (fun (label, v) ->
      let bar = v * width / max_v in
      Buffer.add_string b
        (Printf.sprintf "%-*s | %s %d\n" label_w label (String.make bar '#') v))
    items;
  Buffer.contents b
