let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let row cells = String.concat "," (List.map escape cells)

let render ~header rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b (row header);
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b (row r);
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let write_file path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ~header rows))
