type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string ?(pretty = false) t =
  let b = Buffer.create 1024 in
  let rec emit indent t =
    let pad n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
    let newline () = if pretty then Buffer.add_char b '\n' in
    match t with
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int v -> Buffer.add_string b (string_of_int v)
    | Float v -> Buffer.add_string b (float_literal v)
    | String s -> Buffer.add_string b (escape_string s)
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char b ',';
              newline ()
            end;
            pad (indent + 1);
            emit (indent + 1) item)
          items;
        newline ();
        pad indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              newline ()
            end;
            pad (indent + 1);
            Buffer.add_string b (escape_string k);
            Buffer.add_string b (if pretty then ": " else ":");
            emit (indent + 1) v)
          fields;
        newline ();
        pad indent;
        Buffer.add_char b '}'
  in
  emit 0 t;
  Buffer.contents b
