(** Plain-text table rendering for the CLI, examples and benches.

    Every paper table is ultimately printed through this module so the
    harness output lines up visually with the publication. *)

type align = Left | Right | Center

val render :
  ?title:string ->
  ?aligns:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] draws an ASCII box table.  Column widths are
    derived from the longest cell; [aligns] defaults to left-aligned
    for every column and, when shorter than the header, is padded with
    [Left].
    @raise Invalid_argument if a row's width differs from the header's. *)

val render_kv : ?title:string -> (string * string) list -> string
(** Two-column key/value table without a header row. *)

val fmt_int : int -> string
(** Thousands-separated integer rendering ([744069] -> ["744,069"]). *)

val fmt_pct : float -> string
(** Fraction to percent with one decimal ([0.394] -> ["39.4%"]). *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float rendering, default 2 decimals. *)
