(** Minimal JSON emission (RFC 8259 subset) for machine-readable
    dataset exports.  Writing only — the simulation never consumes
    JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise; [pretty] (default false) adds two-space indentation. *)

val escape_string : string -> string
(** The quoted, escaped form of a string literal. *)
