type t = { mutable state : int64 }

(* SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, and passes BigCrush
   for our simulation purposes; the constants are the reference ones. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* FNV-1a over the label keeps split streams stable across runs. *)
let hash_label label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  !h

let split t label =
  { state = mix (Int64.logxor t.state (hash_label label)) }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next_int64 t) mask) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits, the full mantissa of a double. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  Bytes.unsafe_to_string b

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let choose_weighted t items =
  if Array.length items = 0 then invalid_arg "Prng.choose_weighted: empty array";
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Prng.choose_weighted: weights sum to zero";
  let target = float t total in
  let rec pick i acc =
    if i = Array.length items - 1 then fst items.(i)
    else
      let _, w = items.(i) in
      let acc = acc +. w in
      if target < acc then fst items.(i) else pick (i + 1) acc
  in
  pick 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t a k =
  if k > Array.length a then invalid_arg "Prng.sample: k too large";
  let copy = Array.copy a in
  shuffle t copy;
  Array.sub copy 0 k

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p out of range";
  if p = 1.0 then 0
  else
    let u = Stdlib.max 1e-300 (float t 1.0) in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))

let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 7

let zipf t n s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  (* Inverse-CDF sampling over the precomputable harmonic weights would
     allocate per call; instead use rejection-free cumulative search on a
     lazily cached table per (n, s).  Table cache keyed by (n, s). *)
  let table =
    let key = (n, s) in
    match Hashtbl.find_opt zipf_cache key with
    | Some cdf -> cdf
    | None ->
        let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
        let cdf = Array.make n 0.0 in
        let acc = ref 0.0 in
        Array.iteri
          (fun i wi ->
            acc := !acc +. wi;
            cdf.(i) <- !acc)
          w;
        Hashtbl.add zipf_cache key cdf;
        cdf
  in
  let total = table.(n - 1) in
  let target = float t total in
  (* binary search for the first index with cdf > target *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if table.(mid) > target then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)
