let hex_digit n = "0123456789abcdef".[n]

let encode s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) (hex_digit (c lsr 4));
    Bytes.set b ((2 * i) + 1) (hex_digit (c land 0xf))
  done;
  Bytes.unsafe_to_string b

let value_of_char c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Hex.decode: invalid character %C" c)

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  let b = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = value_of_char h.[2 * i] and lo = value_of_char h.[(2 * i) + 1] in
    Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
  done;
  Bytes.unsafe_to_string b

let encode_colon s =
  let n = String.length s in
  if n = 0 then ""
  else begin
    let b = Buffer.create ((3 * n) - 1) in
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_char b ':';
      let c = Char.code s.[i] in
      Buffer.add_char b (hex_digit (c lsr 4));
      Buffer.add_char b (hex_digit (c land 0xf))
    done;
    Buffer.contents b
  end
