(** Descriptive statistics and empirical distribution helpers used by the
    analysis pipeline (Figure 3 is an ECDF; several tables report
    fractions and percentiles). *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays shorter than 2. *)

val stddev : float array -> float
(** Population standard deviation. *)

val median : float array -> float
(** Median (averaging the two middle values for even lengths); 0 on an
    empty array.  Does not mutate its argument. *)

val percentile : float array -> float -> float
(** [percentile a p] is the [p]-th percentile ([0 <= p <= 100]) using
    linear interpolation between closest ranks.  Does not mutate its
    argument.
    @raise Invalid_argument on an empty array or [p] out of range. *)

val fraction : ('a -> bool) -> 'a array -> float
(** [fraction pred a] is the share of elements satisfying [pred];
    0 on an empty array. *)

module Ecdf : sig
  type t
  (** An empirical cumulative distribution function over floats. *)

  val of_values : float array -> t
  (** Build an ECDF from raw observations.  Does not mutate the input. *)

  val eval : t -> float -> float
  (** [eval t x] is P(X <= x) under the empirical distribution. *)

  val support : t -> (float * float) array
  (** The ECDF as a step function: sorted distinct values paired with
      their cumulative probability. *)

  val count : t -> int
  (** Number of underlying observations. *)

  val value_at_zero : t -> float
  (** [eval t 0.], the "y-axis offset" the paper discusses for Figure 3:
      the fraction of roots that validate zero certificates. *)
end
