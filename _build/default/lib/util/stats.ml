let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    acc /. float_of_int n
  end

let stddev a = sqrt (variance a)

let sorted_copy a =
  let c = Array.copy a in
  Array.sort compare c;
  c

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let c = sorted_copy a in
    if n mod 2 = 1 then c.(n / 2) else (c.((n / 2) - 1) +. c.(n / 2)) /. 2.0
  end

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let c = sorted_copy a in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then c.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (c.(lo) *. (1.0 -. frac)) +. (c.(hi) *. frac)
  end

let fraction pred a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let hits = Array.fold_left (fun acc x -> if pred x then acc + 1 else acc) 0 a in
    float_of_int hits /. float_of_int n
  end

module Ecdf = struct
  type t = { steps : (float * float) array; n : int }

  let of_values values =
    let n = Array.length values in
    if n = 0 then { steps = [||]; n = 0 }
    else begin
      let c = sorted_copy values in
      (* collapse duplicates into steps *)
      let steps = ref [] in
      let i = ref 0 in
      while !i < n do
        let v = c.(!i) in
        let j = ref !i in
        while !j < n && c.(!j) = v do
          incr j
        done;
        steps := (v, float_of_int !j /. float_of_int n) :: !steps;
        i := !j
      done;
      { steps = Array.of_list (List.rev !steps); n }
    end

  let eval t x =
    (* last step with value <= x *)
    let best = ref 0.0 in
    Array.iter (fun (v, p) -> if v <= x then best := p) t.steps;
    !best

  let support t = Array.copy t.steps
  let count t = t.n
  let value_at_zero t = eval t 0.0
end
