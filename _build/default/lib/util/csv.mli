(** Minimal RFC 4180-ish CSV writing, used to dump every figure's data
    series for external plotting. *)

val escape : string -> string
(** Quote a field when it contains a comma, quote or newline. *)

val row : string list -> string
(** One CSV line, without the trailing newline. *)

val render : header:string list -> string list list -> string
(** Full document with header, rows newline-terminated. *)

val write_file : string -> header:string list -> string list list -> unit
(** [write_file path ~header rows] renders and writes the document. *)
