(** Crude terminal plots.  Figures 1–3 of the paper are rendered both as
    CSV (for external plotting) and as these ASCII previews. *)

val scatter :
  ?width:int ->
  ?height:int ->
  ?xlabel:string ->
  ?ylabel:string ->
  ?title:string ->
  (float * float * char) array ->
  string
(** [scatter pts] draws points [(x, y, glyph)] on a character grid.
    When several points land on a cell the last one wins.  Returns the
    empty-plot frame when [pts] is empty. *)

val ecdf_lines :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?title:string ->
  (string * char * (float * float) array) list ->
  string
(** [ecdf_lines series] overlays several step functions, each a list of
    [(x, cumulative_probability)] points, using one glyph per series; a
    legend is appended.  With [log_x] the x axis is log10-scaled
    (zero/negative x plotted at the left edge, matching how the paper's
    Figure 3 shows the y-offset). *)

val histogram : ?width:int -> ?title:string -> (string * int) list -> string
(** Horizontal bar chart of labelled counts. *)
