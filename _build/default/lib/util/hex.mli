(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s], two
    characters per input byte. *)

val decode : string -> string
(** [decode h] is the byte string whose hexadecimal rendering is [h].
    Accepts upper- and lowercase digits.
    @raise Invalid_argument if [h] has odd length or a non-hex character. *)

val encode_colon : string -> string
(** [encode_colon s] is like {!encode} but with [":"] between bytes, the
    conventional rendering of certificate fingerprints. *)
