(** Deterministic pseudo-random number generation.

    The whole simulation derives from a single integer seed through a
    SplitMix64 generator.  Independent subsystems obtain independent
    streams with {!split}, so adding draws to one subsystem never
    perturbs another — a property the regression tests rely on. *)

type t
(** A mutable PRNG stream. *)

val create : int -> t
(** [create seed] is a fresh stream deterministically derived from
    [seed]. *)

val split : t -> string -> t
(** [split t label] is a new independent stream derived from [t]'s seed
    and [label].  The parent stream is not advanced. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte uniformly random string. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.
    @raise Invalid_argument on an empty array. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** [choose_weighted t items] picks an element with probability
    proportional to its weight.  Weights must be non-negative and sum to
    a positive value.
    @raise Invalid_argument on an empty or all-zero-weight array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> 'a array -> int -> 'a array
(** [sample t a k] is [k] distinct elements of [a] in random order.
    @raise Invalid_argument if [k] exceeds [Array.length a]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success
    of a Bernoulli([p]) sequence (support 0, 1, 2, ...).
    @raise Invalid_argument unless [0 < p <= 1]. *)

val zipf : t -> int -> float -> int
(** [zipf t n s] samples a rank in [\[0, n)] under a Zipf law with
    exponent [s]; rank 0 is the most popular.  Used for the Notary's CA
    popularity model. *)
