lib/util/prng.ml: Array Bytes Char Float Hashtbl Int64 Stdlib String
