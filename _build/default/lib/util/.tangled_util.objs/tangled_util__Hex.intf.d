lib/util/hex.mli:
