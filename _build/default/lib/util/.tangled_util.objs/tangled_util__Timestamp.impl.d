lib/util/timestamp.ml: Char Format Printf Stdlib String
