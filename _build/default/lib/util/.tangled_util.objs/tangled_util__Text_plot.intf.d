lib/util/text_plot.mli:
