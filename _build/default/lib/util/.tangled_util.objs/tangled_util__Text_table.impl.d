lib/util/text_table.ml: Buffer List Printf Stdlib String
