lib/util/stats.mli:
