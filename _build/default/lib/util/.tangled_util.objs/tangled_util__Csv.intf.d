lib/util/csv.mli:
