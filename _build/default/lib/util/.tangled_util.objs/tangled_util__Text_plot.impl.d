lib/util/text_plot.ml: Array Buffer List Printf Stdlib String
