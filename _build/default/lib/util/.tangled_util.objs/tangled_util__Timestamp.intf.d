lib/util/timestamp.mli: Format
