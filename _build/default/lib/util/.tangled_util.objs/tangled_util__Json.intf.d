lib/util/json.mli:
