lib/util/prng.mli:
