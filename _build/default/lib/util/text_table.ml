type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let left = fill / 2 in
        String.make left ' ' ^ s ^ String.make (fill - left) ' '

let rule widths =
  "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"

let render ?title ?(aligns = []) ~header rows =
  let ncols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Text_table.render: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let aligns =
    let rec extend l n = if n = 0 then [] else
      match l with
      | [] -> Left :: extend [] (n - 1)
      | a :: rest -> a :: extend rest (n - 1)
    in
    extend aligns ncols
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let draw_row cells =
    let padded =
      List.map2 (fun (w, a) c -> " " ^ pad a w c ^ " ")
        (List.combine widths aligns) cells
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let b = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string b t;
      Buffer.add_char b '\n'
  | None -> ());
  Buffer.add_string b (rule widths);
  Buffer.add_char b '\n';
  Buffer.add_string b (draw_row header);
  Buffer.add_char b '\n';
  Buffer.add_string b (rule widths);
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b (draw_row row);
      Buffer.add_char b '\n')
    rows;
  Buffer.add_string b (rule widths);
  Buffer.contents b

let render_kv ?title kvs =
  let rows = List.map (fun (k, v) -> [ k; v ]) kvs in
  render ?title ~aligns:[ Left; Right ] ~header:[ "key"; "value" ] rows

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let b = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char b '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b c)
    s;
  Buffer.contents b

let fmt_pct f = Printf.sprintf "%.1f%%" (f *. 100.0)
let fmt_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
