(** The Netalyzr-for-Android measurement client (§4.1).

    Every session records (i) the device's installed root certificates,
    (ii) the diff against the matching AOSP baseline, (iii) the
    privacy-preserving device-identity tuple, and — for the subset of
    sessions that run it, plus always for the proxied participant —
    (iv) the TLS trust-chain probe of the popular-domain list. *)

type identity_tuple = {
  network : string;       (** recorded WiFi/cellular network *)
  public_ip : string;
  model : string;
  os_version : Tangled_pki.Paper_data.android_version;
}

type session = {
  session_id : int;
  handset_id : int;
  identity : identity_tuple;
  manufacturer : string;
  operator : string;
  rooted : bool;
  store_keys : string list;
      (** equivalence keys of every enabled root present *)
  aosp_present : int;   (** baseline certificates found *)
  additional : int;     (** certificates beyond the baseline *)
  missing : int;        (** baseline certificates absent *)
  additional_ids : string list;
      (** Figure 2 hash ids of the recognised extras *)
  app_added : string list;
      (** extras attributed to store-touching apps (rooted devices) *)
  probes : Tangled_tls.Handshake.outcome list;
}

type dataset = {
  sessions : session array;
  population : Tangled_device.Population.t;
  world : Tangled_tls.Endpoint.world;
  proxy : Tangled_tls.Proxy.t;
}

val collect :
  ?probe_sample:float ->
  seed:int ->
  Tangled_device.Population.t ->
  dataset
(** Run every handset's sessions.  [probe_sample] is the fraction of
    sessions that also run the TLS probe suite (default 0.05 — chain
    probing is expensive on metered connections, and one pass per
    handset suffices for the §7 analysis; the proxied device always
    probes).  Deterministic in [seed]. *)

val total_sessions : dataset -> int
val extended_fraction : dataset -> float
(** Fraction of sessions whose store strictly extends the baseline. *)

val rooted_fraction : dataset -> float

val unique_root_keys : dataset -> int
(** Distinct root certificates across all sessions (by equivalence). *)

val estimated_handsets : dataset -> int
(** Distinct identity tuples — the paper's device-count proxy. *)

val intercepted_sessions : dataset -> session list
(** Sessions with at least one probe whose chain differs from the
    origin server's. *)
