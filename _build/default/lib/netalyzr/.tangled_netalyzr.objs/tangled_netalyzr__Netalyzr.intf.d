lib/netalyzr/netalyzr.mli: Tangled_device Tangled_pki Tangled_tls
