lib/netalyzr/netalyzr.ml: Array Hashtbl List Printf Tangled_device Tangled_pki Tangled_store Tangled_tls Tangled_util Tangled_x509
