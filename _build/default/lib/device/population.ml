module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Prng = Tangled_util.Prng
module Rs = Tangled_store.Root_store
module Authority = Tangled_x509.Authority
module Dn = Tangled_x509.Dn

type handset = {
  id : int;
  model : string;
  manufacturer : string;
  os_version : PD.android_version;
  operator : string;
  country : string;
  rooted : bool;
  proxied : bool;
  sessions : int;
  store : Rs.t;
  apps : string list;
  user_added : int;
}

type t = {
  handsets : handset array;
  universe : BP.t;
  generic : (string, (string * PD.android_version) list) Hashtbl.t;
}

(* OS-version shares circa the collection window (Nov 2013 – Apr 2014). *)
let version_shares =
  [| (PD.V4_1, 0.35); (PD.V4_2, 0.30); (PD.V4_3, 0.15); (PD.V4_4, 0.20) |]

(* Mean sessions per handset: 15,970 / 3,835. *)
let mean_sessions = 4.16

(* Share of non-Nexus handsets running vendor/operator-customised
   firmware.  Nexus devices ship Google's stock image; tuning this to
   ~0.49 lands the extended-session share at Figure 1's 39%. *)
let customized_probability = 0.49

let is_stock_model model =
  String.length model >= 5 && String.sub model 0 5 = "Nexus"

let draw_sessions rng =
  (* 1 + geometric keeps the mean near the paper's ratio with a long
     tail of frequent testers *)
  1 + Prng.geometric rng (1.0 /. mean_sessions)

let other_manufacturer_sessions target_sessions =
  let named = List.fold_left (fun acc (_, n) -> acc + n) 0 PD.manufacturer_sessions in
  Stdlib.max 0 (target_sessions * (PD.total_sessions - named) / PD.total_sessions)

let pick_operator rng =
  let ops = Array.of_list PD.operators in
  ops.(Prng.int rng (Array.length ops))

let pick_version rng manufacturer =
  (* Figure 2 rows exist for specific vendor/version pairs; Sony
     appears only at 4.3 in the dataset *)
  if manufacturer = "SONY" then PD.V4_3
  else Prng.choose_weighted rng version_shares

(* Model name pools: the five named Table 2 models keep their exact
   manufacturers; the rest of the 435 models are synthesised per
   manufacturer. *)
let model_for rng manufacturer =
  let synth () =
    Printf.sprintf "%s-%c%d" manufacturer
      (Char.chr (Char.code 'A' + Prng.int rng 26))
      (100 + Prng.int rng 80)
  in
  synth ()

let generate ?(target_sessions = PD.total_sessions) ~seed universe =
  let scale = float_of_int target_sessions /. float_of_int PD.total_sessions in
  let master = Prng.create seed in
  let rng_pop = Prng.split master "population" in
  let rng_fw = Prng.split master "firmware" in
  let rng_mut = Prng.split master "mutations" in
  let generic = Firmware.generic_assignment universe in
  let next_id = ref 0 in
  let handsets = ref [] in
  let emit ?model ?version ?(proxied = false) ?(rooted = None) ~manufacturer ~sessions () =
    let id = !next_id in
    incr next_id;
    let os_version = match version with Some v -> v | None -> pick_version rng_pop manufacturer in
    let operator, country = pick_operator rng_pop in
    let model = match model with Some m -> m | None -> model_for rng_pop manufacturer in
    let rooted =
      match rooted with
      | Some r -> r
      | None -> Prng.bernoulli rng_pop PD.fraction_sessions_rooted
    in
    let customized =
      (not (is_stock_model model)) && Prng.bernoulli rng_pop customized_probability
    in
    let store =
      if customized then
        Firmware.assemble rng_fw universe generic
          { Firmware.manufacturer; os_version; operator }
      else universe.BP.aosp os_version
    in
    handsets :=
      {
        id; model; manufacturer; os_version; operator; country; rooted; proxied;
        sessions; store; apps = []; user_added = 0;
      }
      :: !handsets
  in
  (* 1. the five named models, with their exact (scaled) session loads *)
  List.iter
    (fun (model, manufacturer, sessions) ->
      let budget = int_of_float (float_of_int sessions *. scale) in
      let remaining = ref budget in
      while !remaining > 0 do
        let s = Stdlib.min !remaining (draw_sessions rng_pop) in
        emit ~model ~manufacturer ~sessions:s ();
        remaining := !remaining - s
      done)
    PD.top_models;
  (* 2. the rest of each named manufacturer's sessions over synthetic models *)
  List.iter
    (fun (manufacturer, sessions) ->
      let named_model_sessions =
        PD.top_models
        |> List.filter (fun (_, m, _) -> m = manufacturer)
        |> List.fold_left (fun acc (_, _, n) -> acc + n) 0
      in
      let budget =
        int_of_float (float_of_int (sessions - named_model_sessions) *. scale)
      in
      let remaining = ref budget in
      while !remaining > 0 do
        let s = Stdlib.min !remaining (draw_sessions rng_pop) in
        emit ~manufacturer ~sessions:s ();
        remaining := !remaining - s
      done)
    PD.manufacturer_sessions;
  (* 3. the long tail of other manufacturers *)
  let tail_budget = other_manufacturer_sessions target_sessions in
  let tail = Array.of_list PD.other_manufacturers in
  let remaining = ref tail_budget in
  while !remaining > 0 do
    let manufacturer = tail.(Prng.int rng_pop (Array.length tail)) in
    let s = Stdlib.min !remaining (draw_sessions rng_pop) in
    emit ~manufacturer ~sessions:s ();
    remaining := !remaining - s
  done;
  let handsets = Array.of_list (List.rev !handsets) in
  (* 4. post-factory mutations ---------------------------------------- *)
  (* user-added VPN certificates on a few handsets (§5.2) *)
  let rng_user = Prng.split master "user-certs" in
  let user_count = ref 0 in
  Array.iteri
    (fun i h ->
      if Prng.bernoulli rng_mut 0.02 then begin
        incr user_count;
        let cn = Tangled_pki.Ca_names.user_vpn_ca rng_user !user_count in
        let authority =
          Authority.self_signed ~bits:universe.BP.key_bits
            ~digest:Tangled_hash.Digest_kind.SHA1 ~version:1 rng_user (Dn.make cn)
        in
        match
          Rs.add h.store Rs.Settings_ui Rs.User authority.Authority.certificate
        with
        | Ok store -> handsets.(i) <- { h with store; user_added = h.user_added + 1 }
        | Error _ -> ()
      end)
    handsets;
  (* the Table 5 rooted-device installs: Freedom on [freedom_app_devices]
     rooted handsets, each singleton app on one more *)
  let rooted_idx =
    handsets
    |> Array.to_seqi
    |> Seq.filter_map (fun (i, h) -> if h.rooted then Some i else None)
    |> Array.of_seq
  in
  let freedom = Apps.freedom universe in
  let freedom_targets =
    Stdlib.min (Array.length rooted_idx)
      (int_of_float (float_of_int PD.freedom_app_devices *. scale) |> Stdlib.max 1)
  in
  let shuffled = Array.copy rooted_idx in
  Prng.shuffle rng_mut shuffled;
  let apply_app idx (app : Apps.t) =
    let h = handsets.(idx) in
    match Apps.run app ~rooted:h.rooted h.store with
    | Apps.Installed store ->
        handsets.(idx) <- { h with store; apps = app.Apps.app_name :: h.apps }
    | Apps.Refused _ -> ()
  in
  Array.iteri (fun k idx -> if k < freedom_targets then apply_app idx freedom) shuffled;
  List.iteri
    (fun k app ->
      let pos = freedom_targets + k in
      if pos < Array.length shuffled then apply_app shuffled.(pos) app)
    (Apps.singleton_apps universe);
  (* exactly five handsets missing AOSP certificates (Figure 1):
     rooted users deleting entries via privileged tools *)
  let missing_targets = Stdlib.min PD.handsets_missing_certs (Array.length shuffled) in
  for k = 0 to missing_targets - 1 do
    let idx = shuffled.(Array.length shuffled - 1 - k) in
    let h = handsets.(idx) in
    match Rs.certs h.store with
    | first :: _ -> (
        match Rs.remove h.store (Rs.Privileged_app "cleaner") first with
        | Ok store -> handsets.(idx) <- { h with store }
        | Error _ -> ())
    | [] -> ()
  done;
  (* the single proxied Nexus 7 (§7): running Android 4.4 on WiFi *)
  (match
     handsets
     |> Array.to_seqi
     |> Seq.find (fun (_, h) -> h.model = "Nexus 7" && not h.rooted)
   with
  | Some (i, h) ->
      (* participants run stock 4.4; interception happens in transit *)
      handsets.(i) <-
        { h with proxied = true; os_version = PD.V4_4; store = universe.BP.aosp PD.V4_4 }
  | None -> ());
  { handsets; universe; generic }

let total_sessions t =
  Array.fold_left (fun acc h -> acc + h.sessions) 0 t.handsets

let rooted_session_fraction t =
  let rooted =
    Array.fold_left (fun acc h -> if h.rooted then acc + h.sessions else acc) 0 t.handsets
  in
  float_of_int rooted /. float_of_int (Stdlib.max 1 (total_sessions t))

let sessions_by_manufacturer t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun h ->
      Hashtbl.replace tbl h.manufacturer
        (h.sessions + Option.value ~default:0 (Hashtbl.find_opt tbl h.manufacturer)))
    t.handsets;
  Hashtbl.fold (fun m n acc -> (m, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)

let sessions_by_model t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun h ->
      let key = (h.model, h.manufacturer) in
      Hashtbl.replace tbl key
        (h.sessions + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    t.handsets;
  Hashtbl.fold (fun (m, mf) n acc -> (m, mf, n) :: acc) tbl []
  |> List.sort (fun (_, _, a) (_, _, b) -> Stdlib.compare b a)
