(** Firmware root-store assembly (§5.1).

    A handset's factory store is the AOSP base for its OS version plus
    the manufacturer's vendor-wide additions plus the operator's
    customisations.  Which Figure 2 extras a given build carries is
    decided per handset with the per-row frequency from the paper. *)

type profile = {
  manufacturer : string;
  os_version : Tangled_pki.Paper_data.android_version;
  operator : string;
}

val generic_assignment :
  Tangled_pki.Blueprint.t ->
  (string, (string * Tangled_pki.Paper_data.android_version) list) Hashtbl.t
(** For every Generic-placement extra (by hash id): the
    (manufacturer, version) rows that ship it.  Deterministic in the
    universe's seed.  Heavy-extender rows (HTC/Motorola/LG 4.1–4.2,
    Samsung 4.4) receive large slices so Figure 1's >40-certificate
    tail appears; light extenders receive almost none. *)

val assemble :
  Tangled_util.Prng.t ->
  Tangled_pki.Blueprint.t ->
  (string, (string * Tangled_pki.Paper_data.android_version) list) Hashtbl.t ->
  profile ->
  Tangled_store.Root_store.t
(** Build one customised handset's factory store.  The PRNG decides
    which eligible extras this particular build carries
    (frequency-weighted), matching the within-row variance Figure 2
    shows.  On heavy-extender rows a fraction of builds come "fully
    loaded" with every eligible extra — the >40-certificate tail of
    Figure 1. *)

val fully_loaded_fraction : float
(** Share of heavy-extender builds carrying every eligible extra. *)

val vendor_extras :
  Tangled_pki.Blueprint.t ->
  (string, (string * Tangled_pki.Paper_data.android_version) list) Hashtbl.t ->
  profile ->
  (Tangled_pki.Blueprint.root * float) list
(** The extras eligible for a profile with their inclusion
    frequencies — exposed for the Figure 2 analysis. *)
