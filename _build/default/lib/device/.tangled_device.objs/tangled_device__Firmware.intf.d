lib/device/firmware.mli: Hashtbl Tangled_pki Tangled_store Tangled_util
