lib/device/firmware.ml: Hashtbl List Option Stdlib Tangled_pki Tangled_store Tangled_util Tangled_x509
