lib/device/apps.mli: Tangled_pki Tangled_store Tangled_x509
