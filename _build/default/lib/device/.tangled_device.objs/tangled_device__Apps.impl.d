lib/device/apps.ml: Array List Seq Tangled_pki Tangled_store Tangled_x509
