lib/device/population.mli: Hashtbl Tangled_pki Tangled_store
