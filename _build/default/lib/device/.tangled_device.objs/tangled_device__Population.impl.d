lib/device/population.ml: Apps Array Char Firmware Hashtbl List Option Printf Seq Stdlib String Tangled_hash Tangled_pki Tangled_store Tangled_util Tangled_x509
