(** Applications that touch the root store (§6).

    The paper's central §6 finding: a root-privileged app can silently
    mutate the supposedly read-only store.  The Freedom-style app here
    does exactly that; on a non-rooted handset the same attempt is
    refused by the permission model. *)

type outcome =
  | Installed of Tangled_store.Root_store.t
      (** store after the app's mutation *)
  | Refused of Tangled_store.Root_store.error
      (** the platform blocked it (non-rooted handset) *)

type t = {
  app_name : string;
  requires_root : bool;
  ca : Tangled_x509.Certificate.t;  (** what it tries to install *)
}

val freedom : Tangled_pki.Blueprint.t -> t
(** The in-app-purchase-cracking app that installs the CRAZY HOUSE
    certificate on rooted handsets (70 devices in the dataset). *)

val singleton_apps : Tangled_pki.Blueprint.t -> t list
(** The remaining Table 5 cases (MIND OVERFLOW, USER_X, CDA, CIRRUS),
    each observed on one device. *)

val run : t -> rooted:bool -> Tangled_store.Root_store.t -> outcome
(** Attempt the installation.  On a rooted handset the app acts as a
    privileged actor and succeeds; otherwise it is an unprivileged app
    and the store API refuses. *)
