module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module Authority = Tangled_x509.Authority

type outcome =
  | Installed of Rs.t
  | Refused of Rs.error

type t = {
  app_name : string;
  requires_root : bool;
  ca : Tangled_x509.Certificate.t;
}

let authority_cert (universe : BP.t) name =
  match
    Array.to_seq universe.BP.rooted_authorities
    |> Seq.find (fun (n, _) -> n = name)
  with
  | Some (_, authority) -> authority.Authority.certificate
  | None -> invalid_arg ("Apps: unknown rooted CA " ^ name)

let freedom universe =
  {
    app_name = "Freedom";
    requires_root = true;
    ca = authority_cert universe PD.freedom_app_ca;
  }

let singleton_apps universe =
  PD.rooted_cas
  |> List.filter (fun (name, _) -> name <> PD.freedom_app_ca)
  |> List.map (fun (name, _) ->
         {
           app_name = "app-for-" ^ name;
           requires_root = true;
           ca = authority_cert universe name;
         })

let run app ~rooted store =
  let actor =
    if rooted then Rs.Privileged_app app.app_name else Rs.Unprivileged_app app.app_name
  in
  match Rs.add store actor (Rs.App app.app_name) app.ca with
  | Ok store -> Installed store
  | Error e -> Refused e
