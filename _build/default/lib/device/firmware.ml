module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Prng = Tangled_util.Prng
module Rs = Tangled_store.Root_store
module Authority = Tangled_x509.Authority

type profile = {
  manufacturer : string;
  os_version : PD.android_version;
  operator : string;
}

(* Heavy-extender rows, each paired with the approximate slice of the
   generic pool it ships (Figure 1 shows their 4.1/4.2 builds gaining
   more than 40 certificates over AOSP). *)
let heavy_rows =
  List.concat_map
    (fun (m, versions) -> List.map (fun v -> (m, v)) versions)
    PD.heavy_extenders

let light_rows =
  (* conservative vendors: a couple of additions at most *)
  List.concat_map
    (fun m -> List.map (fun v -> (m, v)) PD.android_versions)
    PD.light_extenders

let generic_assignment (universe : BP.t) =
  let rng = Prng.split (Prng.create universe.BP.seed) "firmware-generic" in
  let table = Hashtbl.create 128 in
  Hashtbl.iter
    (fun id (root : BP.root) ->
      match root.BP.extra with
      | Some x when x.PD.xc_placement = PD.Generic ->
          (* most generic extras ride on the heavy rows; a sprinkle
             lands on light rows so their panels are not empty *)
          let rows = ref [] in
          List.iter
            (fun row -> if Prng.bernoulli rng 0.75 then rows := row :: !rows)
            heavy_rows;
          List.iter
            (fun row -> if Prng.bernoulli rng 0.04 then rows := row :: !rows)
            light_rows;
          (* guarantee at least one placement so every Figure 2 column
             has a chance to appear *)
          let rows =
            match !rows with
            | [] -> [ List.nth heavy_rows (Prng.int rng (List.length heavy_rows)) ]
            | l -> l
          in
          Hashtbl.replace table id rows
      | _ -> ())
    universe.BP.extra_by_id;
  table

let vendor_extras (universe : BP.t) generic profile =
  Hashtbl.fold
    (fun id (root : BP.root) acc ->
      match root.BP.extra with
      | None -> acc
      | Some x -> (
          match x.PD.xc_placement with
          | PD.Vendor (manufacturers, versions) ->
              if
                List.mem profile.manufacturer manufacturers
                && List.mem profile.os_version versions
              then (root, x.PD.xc_frequency) :: acc
              else acc
          | PD.Carrier (operators, manufacturers) ->
              if
                List.mem profile.operator operators
                && (manufacturers = [] || List.mem profile.manufacturer manufacturers)
              then (root, x.PD.xc_frequency) :: acc
              else acc
          | PD.Generic ->
              let rows = Option.value ~default:[] (Hashtbl.find_opt generic id) in
              if List.mem (profile.manufacturer, profile.os_version) rows then
                (root, x.PD.xc_frequency) :: acc
              else acc))
    universe.BP.extra_by_id []
  |> List.sort (fun ((a : BP.root), _) (b, _) ->
         Stdlib.compare a.BP.display_name b.BP.display_name)

let fully_loaded_fraction = 0.25

let assemble rng (universe : BP.t) generic profile =
  let base = universe.BP.aosp profile.os_version in
  let eligible = vendor_extras universe generic profile in
  let fully_loaded =
    List.mem (profile.manufacturer, profile.os_version) heavy_rows
    && Prng.bernoulli rng fully_loaded_fraction
  in
  List.fold_left
    (fun store ((root : BP.root), freq) ->
      if fully_loaded || Prng.bernoulli rng freq then begin
        let provenance =
          match root.BP.extra with
          | Some { PD.xc_placement = PD.Carrier _; _ } -> Rs.Operator profile.operator
          | _ -> Rs.Manufacturer profile.manufacturer
        in
        Rs.merge store
          (Rs.of_certs "overlay" provenance [ root.BP.authority.Authority.certificate ])
      end
      else store)
    base eligible
