(** The handset population behind the Netalyzr dataset (§4.1, Table 2).

    Handsets are generated so the marginal distributions match the
    paper: ~3,835 handsets over 435 models, manufacturer session shares
    from Table 2, a 24% rooted session share, exactly five handsets
    missing AOSP certificates, the Table 5 rooted-device certificate
    installs, and one HTTPS-proxied Nexus 7 (§7). *)

type handset = {
  id : int;
  model : string;
  manufacturer : string;
  os_version : Tangled_pki.Paper_data.android_version;
  operator : string;
  country : string;
  rooted : bool;
  proxied : bool;  (** the single Reality Mine participant *)
  sessions : int;  (** Netalyzr runs recorded from this handset *)
  store : Tangled_store.Root_store.t;  (** current root store *)
  apps : string list;  (** store-touching apps present *)
  user_added : int;  (** user-installed (VPN) certificates *)
}

type t = {
  handsets : handset array;
  universe : Tangled_pki.Blueprint.t;
  generic : (string, (string * Tangled_pki.Paper_data.android_version) list) Hashtbl.t;
}

val generate : ?target_sessions:int -> seed:int -> Tangled_pki.Blueprint.t -> t
(** Deterministic in [seed] (independent of the universe seed).
    [target_sessions] scales the whole population (default the paper's
    15,970); handset counts scale proportionally. *)

val total_sessions : t -> int
val rooted_session_fraction : t -> float

val sessions_by_manufacturer : t -> (string * int) list
(** Descending by session count. *)

val sessions_by_model : t -> (string * string * int) list
(** [(model, manufacturer, sessions)], descending. *)
