(** Probabilistic primality testing and prime generation, the key
    ingredient of the RSA substrate. *)

val small_primes : int array
(** The primes below 1000, used for trial-division sieving. *)

val is_probably_prime : ?rounds:int -> Tangled_util.Prng.t -> Bigint.t -> bool
(** Miller–Rabin test with [rounds] random bases (default 20) after a
    trial-division sieve.  Deterministically correct for candidates
    below the small-prime bound; otherwise the error probability is at
    most [4^-rounds]. *)

val generate : ?rounds:int -> Tangled_util.Prng.t -> bits:int -> Bigint.t
(** [generate rng ~bits] is a random probable prime with exactly [bits]
    bits (top bit set), found by incremental search from a random odd
    starting point.  [rounds] is passed to {!is_probably_prime}
    (default 20; the PKI generator uses fewer — random candidates fail
    Miller–Rabin far more often than the worst-case 4{^-rounds} bound).
    @raise Invalid_argument if [bits < 2]. *)
