lib/numeric/prime.mli: Bigint Tangled_util
