lib/numeric/bigint.ml: Array Buffer Bytes Char Format List Option Stdlib String Tangled_util
