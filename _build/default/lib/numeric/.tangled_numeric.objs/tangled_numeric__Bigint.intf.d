lib/numeric/bigint.mli: Format Tangled_util
