lib/numeric/prime.ml: Array Bigint List Tangled_util
