(** Certificate pinning (§2, §7).

    The paper notes that the intercepting proxy whitelists exactly the
    domains whose apps pin their certificates (Facebook, Twitter, most
    Google services) — interception there would hard-fail regardless of
    the root store.  This module models an app pin-set and evaluates a
    handshake against it, so the whitelist's rationale can be measured. *)

type pinset = {
  app : string;
  hosts : (string * int) list;  (** endpoints the app talks to *)
  pins : string list;           (** accepted SPKI digests (SHA-256 of the
                                    issuer public-key modulus chain) *)
}

val spki_pin : Tangled_x509.Certificate.t -> string
(** The pin of one certificate: SHA-256 over its subject public key. *)

val pin_chain : Tangled_x509.Certificate.t list -> string list
(** Pins of every certificate in a presented chain. *)

val of_world : Endpoint.world -> pinset list
(** Build the era's pinning apps from the world: one pin-set per
    whitelisted-domain owner (Google, Facebook, Twitter), pinning the
    genuine chains those endpoints serve. *)

type verdict =
  | Pin_ok
  | Pin_violation
      (** no pinned key appears in the presented chain: the app refuses
          the connection even if the store trusts the chain *)

val evaluate : pinset -> Handshake.outcome -> verdict option
(** [None] when the outcome's endpoint is not one of the app's hosts. *)

val violations :
  pinset list -> Handshake.outcome list -> (string * string * int) list
(** [(app, host, port)] for every pin violation across the probe set. *)
