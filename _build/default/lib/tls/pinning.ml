module C = Tangled_x509.Certificate
module Rsa = Tangled_crypto.Rsa

type pinset = {
  app : string;
  hosts : (string * int) list;
  pins : string list;
}

let spki_pin cert = Tangled_hash.Sha256.digest (Rsa.modulus_bytes cert.C.public_key)

let pin_chain chain = List.map spki_pin chain

(* The whitelisted-domain owners of Table 6, each pinning the genuine
   chain its endpoints serve in this world. *)
let owners =
  [
    ("Google", [ "google-analytics.com", 443; "maps.google.com", 443;
                 "play.google.com", 443; "supl.google.com", 7275;
                 "www.google.com", 443; "www.google.co.uk", 443 ]);
    ("Facebook", [ "orcart.facebook.com", 8883; "www.facebook.com", 443 ]);
    ("Twitter", [ "www.twitter.com", 443 ]);
  ]

let of_world world =
  List.map
    (fun (app, hosts) ->
      let pins =
        List.concat_map
          (fun (host, port) ->
            match Endpoint.lookup world ~host ~port with
            | Some e -> pin_chain e.Endpoint.chain
            | None -> [])
          hosts
        |> List.sort_uniq Stdlib.compare
      in
      { app; hosts; pins })
    owners

type verdict = Pin_ok | Pin_violation

let evaluate pinset (o : Handshake.outcome) =
  if not (List.mem (o.Handshake.host, o.Handshake.port) pinset.hosts) then None
  else begin
    let presented = pin_chain o.Handshake.presented in
    if List.exists (fun p -> List.mem p pinset.pins) presented then Some Pin_ok
    else Some Pin_violation
  end

let violations pinsets outcomes =
  List.concat_map
    (fun pinset ->
      List.filter_map
        (fun (o : Handshake.outcome) ->
          match evaluate pinset o with
          | Some Pin_violation -> Some (pinset.app, o.Handshake.host, o.Handshake.port)
          | _ -> None)
        outcomes)
    pinsets
