(** The intercepting HTTPS proxy of §7.

    Models the Reality Mine deployment: traffic to most TLS endpoints
    is terminated at the proxy, which re-generates root and
    intermediate certificates for the requested domain on the fly and
    presents a chain anchored at its own root; a whitelist of
    pinning-protected and infrastructure domains passes through
    untouched. *)

type t

val create :
  ?whitelist:(string * int) list ->
  seed:int ->
  interceptor:Tangled_x509.Authority.t ->
  Tangled_pki.Blueprint.t ->
  t
(** [create ~seed ~interceptor universe] builds the proxy with the
    paper's Table 6 whitelist by default. *)

val proxy_host : t -> string
(** The tunnel endpoint the participating device routes through. *)

val is_whitelisted : t -> host:string -> port:int -> bool

val terminate :
  t -> Endpoint.t -> Tangled_x509.Certificate.t list
(** The chain the client actually sees for this endpoint: the original
    chain when whitelisted, otherwise a freshly re-signed one —
    [leaf'; intermediate'] anchored at the interceptor root.  Re-signed
    chains are cached per (host, port), matching a real proxy's
    certificate cache. *)

val root : t -> Tangled_x509.Certificate.t
(** The interception root (what a detector looks for). *)
