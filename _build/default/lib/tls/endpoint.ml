module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module Rsa = Tangled_crypto.Rsa

type t = {
  host : string;
  port : int;
  chain : C.t list;
}

type world = {
  by_addr : (string * int, t) Hashtbl.t;
  targets : (string * int) list;
}

let build_world ~seed universe =
  let master = Prng.create seed in
  let rng = Prng.split master "tls-world" in
  let digest = Tangled_hash.Digest_kind.SHA1 in
  let bits = universe.BP.key_bits in
  (* hosting CAs: the most popular active core roots, i.e. those in
     every official store, as real sites of the era were *)
  let hosts_cas =
    Array.to_list universe.BP.roots
    |> List.filter (fun (r : BP.root) ->
           r.BP.traffic_weight > 0.0 && r.BP.in_mozilla && r.BP.in_aosp <> [])
    |> List.sort (fun (a : BP.root) b ->
           Stdlib.compare b.BP.traffic_weight a.BP.traffic_weight)
    |> (fun l -> List.filteri (fun i _ -> i < 12) l)
    |> Array.of_list
  in
  if Array.length hosts_cas = 0 then invalid_arg "Endpoint.build_world: no active core roots";
  let shared_keys =
    Array.init 8 (fun _ -> Rsa.generate ~mr_rounds:6 rng ~bits)
  in
  let intermediate_cache = Hashtbl.create 16 in
  let intermediate_of i (root : BP.root) =
    match Hashtbl.find_opt intermediate_cache i with
    | Some inter -> inter
    | None ->
        let cn =
          Option.value ~default:"CA"
            (Dn.common_name root.BP.authority.Authority.certificate.C.subject)
        in
        let inter =
          Authority.issue_intermediate ~bits ~digest
            ~key:shared_keys.(i mod Array.length shared_keys)
            ~serial:(Tangled_numeric.Bigint.of_int (90_000 + i))
            rng ~parent:root.BP.authority
            (Dn.make ~o:cn (cn ^ " Server CA"))
        in
        Hashtbl.add intermediate_cache i inter;
        inter
  in
  let targets =
    PD.intercepted_domains @ PD.whitelisted_domains
    |> List.sort_uniq Stdlib.compare
  in
  let by_addr = Hashtbl.create 64 in
  List.iteri
    (fun n (host, port) ->
      let i = n mod Array.length hosts_cas in
      let root = hosts_cas.(i) in
      let inter = intermediate_of i root in
      let leaf =
        Authority.issue_leaf ~bits ~digest
          ~key:shared_keys.(n mod Array.length shared_keys)
          ~serial:(Tangled_numeric.Bigint.of_int (100_000 + n))
          ~not_before:(Ts.of_date 2013 1 1)
          ~not_after:(Ts.of_date 2016 1 1)
          rng ~parent:inter ~dns_names:[ host ] (Dn.make host)
      in
      Hashtbl.replace by_addr (host, port)
        { host; port; chain = [ leaf; inter.Authority.certificate ] })
    targets;
  { by_addr; targets }

let lookup world ~host ~port = Hashtbl.find_opt world.by_addr (host, port)

let endpoints world = Hashtbl.fold (fun _ e acc -> e :: acc) world.by_addr []

let probe_targets world = world.targets
