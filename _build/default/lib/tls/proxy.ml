module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Prng = Tangled_util.Prng
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module Rsa = Tangled_crypto.Rsa

type t = {
  whitelist : (string * int) list;
  interceptor : Authority.t;
  intermediate : Authority.t;
  rng : Prng.t;
  bits : int;
  cache : (string * int, C.t list) Hashtbl.t;
  mutable serial : int;
  shared_key : Rsa.private_key;
}

let create ?(whitelist = PD.whitelisted_domains) ~seed ~interceptor universe =
  let rng = Prng.split (Prng.create seed) "mitm-proxy" in
  let bits = universe.BP.key_bits in
  let digest = interceptor.Authority.certificate.C.signature_alg in
  let intermediate =
    Authority.issue_intermediate ~bits ~digest
      ~serial:(Tangled_numeric.Bigint.of_int 666)
      rng ~parent:interceptor
      (Dn.make ~o:PD.interceptor_name (PD.interceptor_name ^ " MITM CA"))
  in
  let shared_key = Rsa.generate ~mr_rounds:6 rng ~bits in
  {
    whitelist;
    interceptor;
    intermediate;
    rng;
    bits;
    cache = Hashtbl.create 32;
    serial = 700_000;
    shared_key;
  }

let proxy_host _ = PD.interceptor_proxy_host

let is_whitelisted t ~host ~port = List.mem (host, port) t.whitelist

let root t = t.interceptor.Authority.certificate

let terminate t (endpoint : Endpoint.t) =
  if is_whitelisted t ~host:endpoint.Endpoint.host ~port:endpoint.Endpoint.port then
    endpoint.Endpoint.chain
  else begin
    let key = (endpoint.Endpoint.host, endpoint.Endpoint.port) in
    match Hashtbl.find_opt t.cache key with
    | Some chain -> chain
    | None ->
        let orig_leaf =
          match endpoint.Endpoint.chain with
          | leaf :: _ -> leaf
          | [] -> invalid_arg "Proxy.terminate: endpoint with empty chain"
        in
        (* re-generate the leaf on the fly, cloning the original's
           subject and validity but signing under the MITM CA *)
        t.serial <- t.serial + 1;
        let forged =
          Authority.reissue_as
            ~serial:(Tangled_numeric.Bigint.of_int t.serial)
            ~bits:t.bits t.rng ~parent:t.intermediate orig_leaf
        in
        let chain = [ forged; t.intermediate.Authority.certificate ] in
        Hashtbl.replace t.cache key chain;
        chain
  end
