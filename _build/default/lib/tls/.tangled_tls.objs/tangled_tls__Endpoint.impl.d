lib/tls/endpoint.ml: Array Hashtbl List Option Stdlib Tangled_crypto Tangled_hash Tangled_numeric Tangled_pki Tangled_util Tangled_x509
