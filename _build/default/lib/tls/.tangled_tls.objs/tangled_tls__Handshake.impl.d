lib/tls/handshake.ml: Endpoint List Proxy String Tangled_store Tangled_validation Tangled_x509
