lib/tls/proxy.ml: Endpoint Hashtbl List Tangled_crypto Tangled_numeric Tangled_pki Tangled_util Tangled_x509
