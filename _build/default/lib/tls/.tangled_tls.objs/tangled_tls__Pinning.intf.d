lib/tls/pinning.mli: Endpoint Handshake Tangled_x509
