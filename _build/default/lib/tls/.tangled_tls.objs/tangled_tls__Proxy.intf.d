lib/tls/proxy.mli: Endpoint Tangled_pki Tangled_x509
