lib/tls/pinning.ml: Endpoint Handshake List Stdlib Tangled_crypto Tangled_hash Tangled_x509
