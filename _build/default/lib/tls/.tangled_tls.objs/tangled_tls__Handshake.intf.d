lib/tls/handshake.mli: Endpoint Proxy Tangled_store Tangled_util Tangled_validation Tangled_x509
