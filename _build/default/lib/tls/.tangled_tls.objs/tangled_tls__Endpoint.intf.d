lib/tls/endpoint.mli: Tangled_pki Tangled_x509
