(** TLS server endpoints: a (host, port) that presents a certificate
    chain when connected to.  The "Internet" of the simulation is a map
    of these, built from the universe's active core CAs. *)

type t = {
  host : string;
  port : int;
  chain : Tangled_x509.Certificate.t list;  (** leaf first *)
}

type world

val build_world : seed:int -> Tangled_pki.Blueprint.t -> world
(** Create endpoints for every Netalyzr probe domain (§7's intercepted
    and whitelisted lists), each with a chain issued by one of the
    universe's active core roots through an intermediate.
    Deterministic in [seed]. *)

val lookup : world -> host:string -> port:int -> t option

val endpoints : world -> t list

val probe_targets : world -> (string * int) list
(** Every (host, port) the Netalyzr client checks. *)
