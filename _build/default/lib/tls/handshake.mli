(** Client-side connection model: what Netalyzr's trust-chain probe
    does for each popular domain — connect, record the presented chain,
    and validate it against the device's root store. *)

type transport =
  | Direct of Endpoint.world
  | Proxied of Endpoint.world * Proxy.t
      (** all traffic tunnels through an intercepting proxy (§7) *)

type outcome = {
  host : string;
  port : int;
  presented : Tangled_x509.Certificate.t list;
  verdict : (Tangled_x509.Certificate.t, Tangled_validation.Chain.failure) result;
      (** anchoring root on success *)
  intercepted : bool;
      (** the presented leaf differs from the origin server's — what a
          notary-style comparison detects *)
}

val connect :
  transport ->
  store:Tangled_store.Root_store.t ->
  now:Tangled_util.Timestamp.t ->
  host:string ->
  port:int ->
  outcome option
(** [None] when no such endpoint exists in the world. *)

val probe_all :
  transport ->
  store:Tangled_store.Root_store.t ->
  now:Tangled_util.Timestamp.t ->
  outcome list
(** Run the full Netalyzr probe list. *)
