module C = Tangled_x509.Certificate
module Chain = Tangled_validation.Chain
module Rs = Tangled_store.Root_store

type transport =
  | Direct of Endpoint.world
  | Proxied of Endpoint.world * Proxy.t

type outcome = {
  host : string;
  port : int;
  presented : C.t list;
  verdict : (C.t, Chain.failure) result;
  intercepted : bool;
}

let world_of = function Direct w -> w | Proxied (w, _) -> w

let connect transport ~store ~now ~host ~port =
  match Endpoint.lookup (world_of transport) ~host ~port with
  | None -> None
  | Some endpoint ->
      let presented =
        match transport with
        | Direct _ -> endpoint.Endpoint.chain
        | Proxied (_, proxy) -> Proxy.terminate proxy endpoint
      in
      let intercepted =
        match (presented, endpoint.Endpoint.chain) with
        | p :: _, o :: _ -> not (String.equal (C.byte_identity p) (C.byte_identity o))
        | _ -> false
      in
      let result = Chain.validate ~now ~store presented in
      Some { host; port; presented; verdict = result.Chain.verdict; intercepted }

let probe_all transport ~store ~now =
  Endpoint.probe_targets (world_of transport)
  |> List.filter_map (fun (host, port) -> connect transport ~store ~now ~host ~port)
