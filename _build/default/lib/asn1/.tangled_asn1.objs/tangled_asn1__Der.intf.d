lib/asn1/der.mli: Format Oid Tangled_numeric Tangled_util
