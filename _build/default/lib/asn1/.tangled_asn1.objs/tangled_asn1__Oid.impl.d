lib/asn1/oid.ml: Array Buffer Char Format List Printf Stdlib String
