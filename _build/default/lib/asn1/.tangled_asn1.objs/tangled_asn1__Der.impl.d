lib/asn1/der.ml: Buffer Char Format List Oid Printf Stdlib String Tangled_numeric Tangled_util
