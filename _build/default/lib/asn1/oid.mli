(** ASN.1 object identifiers. *)

type t

val of_arcs : int list -> t
(** @raise Invalid_argument unless there are at least two arcs, the
    first is 0–2, and (for first arc 0 or 1) the second is below 40. *)

val of_string : string -> t
(** Dotted-decimal parsing, e.g. ["1.2.840.113549.1.1.11"].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val arcs : t -> int list
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val to_der_content : t -> string
(** Content octets of the DER encoding (no tag/length). *)

val of_der_content : string -> t option
(** Inverse of {!to_der_content}; [None] on malformed input. *)

(** Well-known OIDs used by the X.509 layer. *)

val rsa_encryption : t
val md5_with_rsa : t
val sha1_with_rsa : t
val sha256_with_rsa : t

val at_common_name : t
val at_country : t
val at_organization : t
val at_organizational_unit : t
val at_locality : t
val at_state : t
val at_email : t

val ext_subject_key_id : t
val ext_authority_key_id : t
val ext_key_usage : t
val ext_basic_constraints : t
val ext_ext_key_usage : t
val ext_subject_alt_name : t

val kp_server_auth : t
val kp_client_auth : t
val kp_code_signing : t
val kp_email_protection : t
val kp_time_stamping : t
