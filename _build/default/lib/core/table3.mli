(** Table 3 — number of Notary certificates each root store validates.

    Measured counts are scaled-world absolutes; the comparison column
    converts the paper's counts (of ~1M unexpired) to the local scale. *)

type row = {
  store : string;
  validated : int;
  fraction : float;       (** of unexpired chains *)
  paper_fraction : float; (** paper count / 1M *)
}

type t = { rows : row list; unexpired : int }

val compute : Pipeline.t -> t
val render : t -> string
val csv : t -> string list * string list list
