(** Seed-sensitivity analysis: how much do the headline statistics move
    across independent worlds?

    The reproduction's only stochastic inputs are the population and
    traffic draws; this experiment re-runs the pipeline over several
    seeds (reusing one PKI universe) and reports mean and standard
    deviation for each headline quantity, backing the robustness claims
    in EXPERIMENTS.md. *)

type stat = {
  name : string;
  paper : float;
  mean : float;
  stddev : float;
  values : float list;  (** one per seed, in seed order *)
}

val compute : ?seeds:int list -> ?config:Pipeline.config -> Pipeline.t -> stat list
(** [compute base] re-runs the pipeline for each seed (default
    [2; 3; 4]) with [base]'s universe and a config derived from
    [config] (default: [base]'s own), then aggregates:
    extended-session share, rooted share, per-store validated fraction,
    AOSP 4.4 zero-validation share. *)

val render : stat list -> string
val csv : stat list -> string list * string list list
