module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Net = Tangled_netalyzr.Netalyzr
module Notary = Tangled_notary.Notary
module Handshake = Tangled_tls.Handshake
module J = Tangled_util.Json
module Ts = Tangled_util.Timestamp
module Hex = Tangled_util.Hex

let take limit l =
  match limit with
  | None -> l
  | Some n -> List.filteri (fun i _ -> i < n) l

let probe_json (o : Handshake.outcome) =
  J.Obj
    [
      ("host", J.String o.Handshake.host);
      ("port", J.Int o.Handshake.port);
      ( "verdict",
        J.String
          (match o.Handshake.verdict with
          | Ok anchor -> "trusted:" ^ Dn.to_string anchor.C.subject
          | Error f -> "untrusted:" ^ Tangled_validation.Chain.failure_to_string f) );
      ("intercepted", J.Bool o.Handshake.intercepted);
      ("chain_length", J.Int (List.length o.Handshake.presented));
    ]

let session_json (s : Net.session) =
  J.Obj
    [
      ("session_id", J.Int s.Net.session_id);
      ("handset_id", J.Int s.Net.handset_id);
      ("network", J.String s.Net.identity.Net.network);
      ("public_ip", J.String s.Net.identity.Net.public_ip);
      ("model", J.String s.Net.identity.Net.model);
      ("os_version", J.String (PD.version_to_string s.Net.identity.Net.os_version));
      ("manufacturer", J.String s.Net.manufacturer);
      ("operator", J.String s.Net.operator);
      ("rooted", J.Bool s.Net.rooted);
      ("store_size", J.Int (List.length s.Net.store_keys));
      ("aosp_present", J.Int s.Net.aosp_present);
      ("additional", J.Int s.Net.additional);
      ("missing", J.Int s.Net.missing);
      ("additional_ids", J.List (List.map (fun id -> J.String id) s.Net.additional_ids));
      ("app_added", J.List (List.map (fun n -> J.String n) s.Net.app_added));
      ("probes", J.List (List.map probe_json s.Net.probes));
    ]

let sessions_json ?limit (w : Pipeline.t) =
  let d = w.Pipeline.dataset in
  J.Obj
    [
      ("tool", J.String "netalyzr-for-android (synthetic)");
      ("seed", J.Int w.Pipeline.config.Pipeline.seed);
      ("collected_at", J.String (Ts.to_utc_string Ts.paper_epoch));
      ("total_sessions", J.Int (Net.total_sessions d));
      ("estimated_handsets", J.Int (Net.estimated_handsets d));
      ("unique_roots", J.Int (Net.unique_root_keys d));
      ( "sessions",
        J.List (take limit (Array.to_list d.Net.sessions) |> List.map session_json) );
    ]

let chain_json (c : Notary.chain) =
  J.Obj
    [
      ("subject", J.String (Dn.to_string c.Notary.leaf.C.subject));
      ("issuer", J.String (Dn.to_string c.Notary.leaf.C.issuer));
      ("not_before", J.String (Ts.to_utc_string c.Notary.leaf.C.not_before));
      ("not_after", J.String (Ts.to_utc_string c.Notary.leaf.C.not_after));
      ("expired", J.Bool c.Notary.expired);
      ("via_intermediate", J.Bool (c.Notary.intermediates <> []));
      ( "anchor",
        match c.Notary.anchor with
        | Some k -> J.String (Hex.encode (String.sub (Tangled_hash.Sha256.digest k) 0 8))
        | None -> J.Null );
    ]

let notary_json ?limit (w : Pipeline.t) =
  let n = w.Pipeline.notary in
  let u = w.Pipeline.universe in
  let store_counts =
    List.map
      (fun v ->
        ( "aosp_" ^ PD.version_to_string v,
          J.Int (Notary.validated_by_store n (u.BP.aosp v)) ))
      PD.android_versions
    @ [
        ("mozilla", J.Int (Notary.validated_by_store n u.BP.mozilla));
        ("ios7", J.Int (Notary.validated_by_store n u.BP.ios7));
      ]
  in
  J.Obj
    [
      ("source", J.String "icsi-certificate-notary (synthetic)");
      ("unexpired", J.Int (Notary.unexpired n));
      ("total", J.Int (Notary.total n));
      ("scale_vs_paper", J.Float n.Notary.scale);
      ("validated_by_store", J.Obj store_counts);
      ( "chains",
        J.List (take limit (Array.to_list n.Notary.chains) |> List.map chain_json) );
    ]

let cert_json cert =
  J.Obj
    [
      ("subject", J.String (Dn.to_string cert.C.subject));
      ("hash_id", J.String (C.subject_hash32 cert));
      ("fingerprint_sha256", J.String (Hex.encode (C.fingerprint cert)));
      ("not_after", J.String (Ts.to_utc_string cert.C.not_after));
    ]

let stores_json (w : Pipeline.t) =
  let u = w.Pipeline.universe in
  let store_json store =
    J.Obj
      [
        ("name", J.String (Rs.name store));
        ("size", J.Int (Rs.cardinal store));
        ("certificates", J.List (List.map cert_json (Rs.certs store)));
      ]
  in
  J.Obj
    [
      ( "stores",
        J.List
          (List.map (fun v -> store_json (u.BP.aosp v)) PD.android_versions
          @ [ store_json u.BP.mozilla; store_json u.BP.ios7 ]) );
    ]

let write_file path json =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~pretty:true json);
      output_char oc '\n')
