(** Machine-readable dataset exports: the Netalyzr session log and the
    Notary certificate database, in the shapes a downstream analysis
    (outside this library) would consume. *)

val sessions_json : ?limit:int -> Pipeline.t -> Tangled_util.Json.t
(** The Netalyzr dataset as a JSON document: collection metadata plus
    one record per session (identity tuple, store summary, probe
    results).  [limit] truncates to the first N sessions. *)

val notary_json : ?limit:int -> Pipeline.t -> Tangled_util.Json.t
(** The Notary database: per-chain records (leaf subject, issuer,
    validity, anchor) plus the aggregate per-store counts. *)

val stores_json : Pipeline.t -> Tangled_util.Json.t
(** The official stores: per store, the list of certificate subjects
    with their hash ids and fingerprints. *)

val write_file : string -> Tangled_util.Json.t -> unit
