(** Table 6 — domains intercepted versus whitelisted by the HTTPS
    proxy, as observed from the proxied device's trust-chain probes. *)

type row = {
  host : string;
  port : int;
  intercepted : bool;
  trusted_by_device : bool;
      (** whether the presented chain validated against the device's
          (unmodified) store — false for the proxy's re-signed chains,
          which is exactly the detection signal *)
  anchor : string option;  (** subject of the anchoring root, if any *)
}

type t = {
  rows : row list;
  proxy_host : string;
  proxied_sessions : int;
}

val compute : Pipeline.t -> t
val render : t -> string
val csv : t -> string list * string list list
