module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Net = Tangled_netalyzr.Netalyzr
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module T = Tangled_util.Text_table

type row = { ca : string; devices : int; paper_devices : int }

type t = {
  rows : row list;
  rooted_session_fraction : float;
  exclusive_session_fraction : float;
}

let compute (w : Pipeline.t) =
  let d = w.Pipeline.dataset in
  let universe = w.Pipeline.universe in
  (* identify, per rooted-device CA, the distinct handsets carrying it *)
  let devices_of key =
    let seen = Hashtbl.create 64 in
    Array.iter
      (fun (s : Net.session) ->
        if List.mem key s.Net.store_keys then Hashtbl.replace seen s.Net.handset_id ())
      d.Net.sessions;
    Hashtbl.length seen
  in
  let rows =
    Array.to_list universe.BP.rooted_authorities
    |> List.map (fun (name, authority) ->
           let key = C.equivalence_key authority.Authority.certificate in
           {
             ca = name;
             devices = devices_of key;
             paper_devices = Option.value ~default:0 (List.assoc_opt name PD.rooted_cas);
           })
    |> List.sort (fun a b -> Stdlib.compare b.devices a.devices)
  in
  let rooted_sessions =
    Array.to_list d.Net.sessions |> List.filter (fun (s : Net.session) -> s.Net.rooted)
  in
  let exclusive =
    rooted_sessions |> List.filter (fun (s : Net.session) -> s.Net.app_added <> [])
  in
  {
    rows;
    rooted_session_fraction = Net.rooted_fraction d;
    exclusive_session_fraction =
      (if rooted_sessions = [] then 0.0
       else float_of_int (List.length exclusive) /. float_of_int (List.length rooted_sessions));
  }

let render t =
  let table =
    T.render ~title:"Table 5: CAs found more frequently on rooted devices"
      ~aligns:[ T.Left; T.Right; T.Right ]
      ~header:[ "Certificate authority"; "Total devices"; "paper" ]
      (List.map
         (fun r -> [ r.ca; string_of_int r.devices; string_of_int r.paper_devices ])
         t.rows)
  in
  table
  ^ Printf.sprintf "\nRooted sessions: %s (paper: 24%%)\n"
      (T.fmt_pct t.rooted_session_fraction)
  ^ Printf.sprintf "Rooted sessions with exclusive certificates: %s (paper: 6%%)\n"
      (T.fmt_pct t.exclusive_session_fraction)

let csv t =
  ( [ "ca"; "devices"; "paper_devices" ],
    List.map
      (fun r -> [ r.ca; string_of_int r.devices; string_of_int r.paper_devices ])
      t.rows )
