(** The §8 counterfactual: what would scoped trust buy?

    Android treats every store certificate as a TLS trust anchor.  This
    analysis applies Mozilla-style scope restriction
    ({!Tangled_store.Trust_scope}) to each official store and to the
    observed device population, and reports the shrink in the TLS attack
    surface next to the (unchanged) TLS coverage. *)

type row = {
  store : string;
  anchors_android : int;
      (** TLS-usable anchors under Android's everything-counts model *)
  anchors_scoped : int;  (** anchors remaining after scope restriction *)
  coverage_android : float;
  coverage_scoped : float;  (** fraction of Notary chains still validated *)
}

type t = {
  rows : row list;
  device_extra_reduction : float;
      (** share of device-store extras (across extended sessions) that
          scoping would exclude from TLS use *)
}

val compute : Pipeline.t -> t
val render : t -> string
val csv : t -> string list * string list list
