(** Figure 1 — scatter of AOSP-baseline certificate count (x) against
    additional-certificate count (y) per manufacturer and OS version,
    weighted by session count. *)

type point = {
  manufacturer : string;
  os_version : Tangled_pki.Paper_data.android_version;
  aosp_present : int;
  additional : int;
  sessions : int;
}

type t = {
  points : point list;
  extended_fraction : float;          (** paper: 0.39 *)
  handsets_missing : int;             (** paper: 5 *)
  heavy_fraction : (string * Tangled_pki.Paper_data.android_version * float) list;
      (** per heavy-extender row: fraction of its sessions gaining more
          than 40 certificates *)
}

val compute : Pipeline.t -> t
val render : t -> string
(** An ASCII preview of the scatter, one panel per OS version, plus the
    headline statistics. *)

val csv : t -> string list * string list list
