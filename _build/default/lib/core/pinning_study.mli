(** The whitelist rationale (§7): what would happen if the proxy did
    NOT whitelist the pinning-protected domains?

    For every probe target, this analysis connects through a
    no-whitelist variant of the interception proxy and evaluates the
    era's pinning apps against the forged chains — measuring that each
    whitelisted domain belongs to an app whose pins the proxy cannot
    satisfy, while the intercepted domains have no pinning protection. *)

type row = {
  host : string;
  port : int;
  whitelisted : bool;     (** by the real proxy (Table 6) *)
  pinned_app : string option;  (** the app that pins this endpoint *)
  would_break : bool;
      (** interception of this endpoint trips a pin violation *)
}

type t = {
  rows : row list;
  consistent : bool;
      (** every whitelisted endpoint is pin-protected and every
          intercepted one is not — the paper's observed behaviour *)
}

val compute : Pipeline.t -> t
val render : t -> string
val csv : t -> string list * string list list
