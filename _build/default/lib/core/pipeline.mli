(** End-to-end assembly of the study: build the PKI universe, simulate
    the device population, run the Netalyzr collection and the Notary
    observation — everything the per-table analyses consume. *)

type config = {
  seed : int;
  sessions : int;      (** Netalyzr session target (paper: 15,970) *)
  notary_leaves : int; (** unexpired Notary leaves (paper: ~1 M) *)
  expired_fraction : float;
  key_bits : int;
  probe_sample : float;
}

val default_config : config
(** seed 1, 15,970 sessions, 10,000 leaves, 10% expired, 384-bit keys,
    5% probe sample. *)

val quick_config : config
(** A small world for tests and examples: 2,000 sessions, 2,000
    leaves. *)

type t = {
  config : config;
  universe : Tangled_pki.Blueprint.t;
  population : Tangled_device.Population.t;
  dataset : Tangled_netalyzr.Netalyzr.dataset;
  notary : Tangled_notary.Notary.t;
}

val run : ?config:config -> ?universe:Tangled_pki.Blueprint.t -> unit -> t
(** Fully deterministic in the config.  Pass [universe] to reuse an
    already-built PKI (it embeds its own seed and key size; the
    config's [key_bits] is then ignored). *)

val quick : t Lazy.t
(** A process-wide world built from {!quick_config} over
    {!Tangled_pki.Blueprint.default}, shared by tests, examples and
    benches. *)
