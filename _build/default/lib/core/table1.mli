(** Table 1 — number of certificates in each root store. *)

type row = { store : string; certificates : int; paper : int }

val compute : Pipeline.t -> row list
val render : row list -> string
val csv : row list -> string list * string list list
