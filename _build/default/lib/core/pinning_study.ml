module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Endpoint = Tangled_tls.Endpoint
module Proxy = Tangled_tls.Proxy
module Handshake = Tangled_tls.Handshake
module Pinning = Tangled_tls.Pinning
module Ts = Tangled_util.Timestamp
module T = Tangled_util.Text_table

type row = {
  host : string;
  port : int;
  whitelisted : bool;
  pinned_app : string option;
  would_break : bool;
}

type t = {
  rows : row list;
  consistent : bool;
}

let compute (w : Pipeline.t) =
  let u = w.Pipeline.universe in
  let world = w.Pipeline.dataset.Tangled_netalyzr.Netalyzr.world in
  (* a greedy proxy with no whitelist at all *)
  let greedy =
    Proxy.create ~whitelist:[] ~seed:99 ~interceptor:u.BP.interceptor u
  in
  let pinsets = Pinning.of_world world in
  let store = u.BP.aosp PD.V4_4 in
  let now = Ts.paper_epoch in
  let outcomes =
    Handshake.probe_all (Handshake.Proxied (world, greedy)) ~store ~now
  in
  let rows =
    List.map
      (fun (o : Handshake.outcome) ->
        let pinned_app =
          List.find_map
            (fun (p : Pinning.pinset) ->
              if List.mem (o.Handshake.host, o.Handshake.port) p.Pinning.hosts then
                Some p.Pinning.app
              else None)
            pinsets
        in
        let would_break =
          List.exists
            (fun (p : Pinning.pinset) ->
              Pinning.evaluate p o = Some Pinning.Pin_violation)
            pinsets
        in
        {
          host = o.Handshake.host;
          port = o.Handshake.port;
          whitelisted = List.mem (o.Handshake.host, o.Handshake.port) PD.whitelisted_domains;
          pinned_app;
          would_break;
        })
      outcomes
    |> List.sort (fun a b -> Stdlib.compare (a.host, a.port) (b.host, b.port))
  in
  let consistent =
    List.for_all (fun r -> r.whitelisted = (r.pinned_app <> None)) rows
    && List.for_all (fun r -> r.would_break = (r.pinned_app <> None)) rows
  in
  { rows; consistent }

let render t =
  T.render
    ~title:
      "Pinning counterfactual (§7): a whitelist-free proxy vs the era's pinning apps"
    ~aligns:[ T.Left; T.Left; T.Left; T.Left ]
    ~header:[ "Endpoint"; "Really whitelisted?"; "Pinned by"; "Interception would" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%s:%d" r.host r.port;
           (if r.whitelisted then "yes" else "no");
           Option.value ~default:"-" r.pinned_app;
           (if r.would_break then "hard-fail (pin violation)" else "succeed silently");
         ])
       t.rows)
  ^ (if t.consistent then
       "\nThe whitelist coincides exactly with the pin-protected endpoints: the\n\
        proxy avoids precisely the domains where interception is detectable.\n"
     else "\nWARNING: whitelist and pinning protection diverge in this world.\n")

let csv t =
  ( [ "host"; "port"; "whitelisted"; "pinned_app"; "would_break" ],
    List.map
      (fun r ->
        [
          r.host;
          string_of_int r.port;
          string_of_bool r.whitelisted;
          Option.value ~default:"" r.pinned_app;
          string_of_bool r.would_break;
        ])
      t.rows )
