module PD = Tangled_pki.Paper_data
module Rs = Tangled_store.Root_store
module BP = Tangled_pki.Blueprint
module T = Tangled_util.Text_table

type row = { store : string; certificates : int; paper : int }

let compute (w : Pipeline.t) =
  let u = w.Pipeline.universe in
  List.map
    (fun v ->
      {
        store = "Android " ^ PD.version_to_string v;
        certificates = Rs.cardinal (u.BP.aosp v);
        paper = PD.aosp_store_size v;
      })
    PD.android_versions
  @ [
      { store = "iOS7"; certificates = Rs.cardinal u.BP.ios7; paper = PD.ios7_store_size };
      {
        store = "Mozilla";
        certificates = Rs.cardinal u.BP.mozilla;
        paper = PD.mozilla_store_size;
      };
    ]

let render rows =
  T.render ~title:"Table 1: Number of certificates in different root stores"
    ~aligns:[ T.Left; T.Right; T.Right ]
    ~header:[ "Operating system"; "No. certificates"; "paper" ]
    (List.map
       (fun r -> [ r.store; string_of_int r.certificates; string_of_int r.paper ])
       rows)

let csv rows =
  ( [ "store"; "certificates"; "paper" ],
    List.map
      (fun r -> [ r.store; string_of_int r.certificates; string_of_int r.paper ])
      rows )
