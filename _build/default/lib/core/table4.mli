(** Table 4 — per root-certificate category: population size and the
    fraction of roots that validate none of the Notary's certificates. *)

type row = {
  category : string;
  total : int;
  zero_fraction : float;
  paper_total : int;
  paper_zero_fraction : float;
}

val compute : Pipeline.t -> row list
val render : row list -> string
val csv : row list -> string list * string list list
