(** Figure 2 — which additional certificates appear on which
    manufacturer/operator rows, how often, and how the Notary
    classifies each certificate. *)

type row_kind = By_manufacturer | By_operator

type cell = {
  row : string;  (** e.g. ["SAMSUNG 4.2"] or ["VERIZON(US)"] *)
  row_kind : row_kind;
  cert_name : string;
  cert_id : string;
  frequency : float;
      (** sessions of that row carrying the cert, over the row's
          modified-store sessions *)
  notary_class : Tangled_pki.Paper_data.notary_class;
}

type t = {
  cells : cell list;
  class_mix : (Tangled_pki.Paper_data.notary_class * float) list;
      (** share of Figure 2 markers per Notary class; paper legend:
          6.7% Mozilla+iOS7, 16.2% iOS7, 37.1% Android-only,
          40.0% unrecorded *)
}

val compute : ?min_row_sessions:int -> Pipeline.t -> t
(** Rows with fewer than [min_row_sessions] modified-store sessions are
    omitted, as in the paper (default 10). *)

val render : ?max_rows:int -> t -> string
val csv : t -> string list * string list list
