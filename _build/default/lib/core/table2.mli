(** Table 2 — top 5 mobile devices and manufacturers by session count
    in the Netalyzr dataset. *)

type t = {
  top_devices : (string * int) list;       (** model, sessions *)
  top_manufacturers : (string * int) list;
}

val compute : ?top:int -> Pipeline.t -> t
val render : t -> string
val csv : t -> string list * string list list
