module BP = Tangled_pki.Blueprint
module Pop = Tangled_device.Population
module Net = Tangled_netalyzr.Netalyzr
module Notary = Tangled_notary.Notary
module PD = Tangled_pki.Paper_data

type config = {
  seed : int;
  sessions : int;
  notary_leaves : int;
  expired_fraction : float;
  key_bits : int;
  probe_sample : float;
}

let default_config =
  {
    seed = 1;
    sessions = PD.total_sessions;
    notary_leaves = 10_000;
    expired_fraction = 0.10;
    key_bits = 384;
    probe_sample = 0.05;
  }

let quick_config =
  { default_config with sessions = 2_000; notary_leaves = 2_000 }

type t = {
  config : config;
  universe : BP.t;
  population : Pop.t;
  dataset : Net.dataset;
  notary : Notary.t;
}

let run ?(config = default_config) ?universe () =
  let universe =
    match universe with
    | Some u -> u
    | None -> BP.build ~key_bits:config.key_bits ~seed:config.seed ()
  in
  let population =
    Pop.generate ~target_sessions:config.sessions ~seed:(config.seed + 1) universe
  in
  let dataset =
    Net.collect ~probe_sample:config.probe_sample ~seed:(config.seed + 2) population
  in
  let notary =
    Notary.generate ~leaves:config.notary_leaves
      ~expired_fraction:config.expired_fraction ~seed:(config.seed + 3) universe
  in
  { config; universe; population; dataset; notary }

let quick =
  lazy (run ~config:quick_config ~universe:(Lazy.force BP.default) ())
