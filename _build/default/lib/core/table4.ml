module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Notary = Tangled_notary.Notary
module T = Tangled_util.Text_table

type row = {
  category : string;
  total : int;
  zero_fraction : float;
  paper_total : int;
  paper_zero_fraction : float;
}

let compute (w : Pipeline.t) =
  let notary = w.Pipeline.notary in
  List.map
    (fun (label, paper_total, paper_zero) ->
      let certs = BP.store_of_category w.Pipeline.universe label in
      let counts = Notary.counts_for_certs notary certs in
      {
        category = label;
        total = Array.length counts;
        zero_fraction = Tangled_util.Stats.fraction (fun c -> c = 0.0) counts;
        paper_total;
        paper_zero_fraction = paper_zero;
      })
    PD.table4_rows

let render rows =
  T.render
    ~title:
      "Table 4: Root certificates per category, and the share validating no Notary certs"
    ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ]
    ~header:[ "Root store category"; "Total"; "Validate none"; "paper total"; "paper" ]
    (List.map
       (fun r ->
         [
           r.category;
           string_of_int r.total;
           T.fmt_pct r.zero_fraction;
           string_of_int r.paper_total;
           T.fmt_pct r.paper_zero_fraction;
         ])
       rows)

let csv rows =
  ( [ "category"; "total"; "zero_fraction"; "paper_total"; "paper_zero_fraction" ],
    List.map
      (fun r ->
        [
          r.category;
          string_of_int r.total;
          Printf.sprintf "%.4f" r.zero_fraction;
          string_of_int r.paper_total;
          Printf.sprintf "%.4f" r.paper_zero_fraction;
        ])
      rows )
