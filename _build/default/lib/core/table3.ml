module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Notary = Tangled_notary.Notary
module T = Tangled_util.Text_table

type row = {
  store : string;
  validated : int;
  fraction : float;
  paper_fraction : float;
}

type t = { rows : row list; unexpired : int }

let compute (w : Pipeline.t) =
  let u = w.Pipeline.universe in
  let notary = w.Pipeline.notary in
  let unexpired = Notary.unexpired notary in
  let stores =
    [
      ("Mozilla", u.BP.mozilla);
      ("iOS 7", u.BP.ios7);
      ("AOSP 4.1", u.BP.aosp PD.V4_1);
      ("AOSP 4.2", u.BP.aosp PD.V4_2);
      ("AOSP 4.3", u.BP.aosp PD.V4_3);
      ("AOSP 4.4", u.BP.aosp PD.V4_4);
    ]
  in
  let rows =
    List.map
      (fun (name, store) ->
        let validated = Notary.validated_by_store notary store in
        let paper_count = List.assoc name PD.table3_validated in
        {
          store = name;
          validated;
          fraction = float_of_int validated /. float_of_int (Stdlib.max 1 unexpired);
          paper_fraction =
            float_of_int paper_count /. float_of_int PD.notary_unexpired_certs;
        })
      stores
  in
  { rows; unexpired }

let render t =
  T.render
    ~title:
      (Printf.sprintf
         "Table 3: Notary certificates validated per root store (of %s unexpired)"
         (T.fmt_int t.unexpired))
    ~aligns:[ T.Left; T.Right; T.Right; T.Right ]
    ~header:[ "Root store"; "No. validated"; "fraction"; "paper fraction" ]
    (List.map
       (fun r ->
         [
           r.store;
           T.fmt_int r.validated;
           T.fmt_pct r.fraction;
           T.fmt_pct r.paper_fraction;
         ])
       t.rows)

let csv t =
  ( [ "store"; "validated"; "fraction"; "paper_fraction" ],
    List.map
      (fun r ->
        [
          r.store;
          string_of_int r.validated;
          Printf.sprintf "%.6f" r.fraction;
          Printf.sprintf "%.6f" r.paper_fraction;
        ])
      t.rows )
