lib/core/figure3.mli: Pipeline Tangled_util
