lib/core/export.mli: Pipeline Tangled_util
