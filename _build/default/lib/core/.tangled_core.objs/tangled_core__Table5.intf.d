lib/core/table5.mli: Pipeline
