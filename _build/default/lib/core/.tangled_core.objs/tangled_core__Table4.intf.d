lib/core/table4.mli: Pipeline
