lib/core/scoping.ml: Array Hashtbl List Pipeline Printf Stdlib Tangled_netalyzr Tangled_notary Tangled_pki Tangled_store Tangled_util Tangled_x509
