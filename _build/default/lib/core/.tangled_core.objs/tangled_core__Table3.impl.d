lib/core/table3.ml: List Pipeline Printf Stdlib Tangled_notary Tangled_pki Tangled_util
