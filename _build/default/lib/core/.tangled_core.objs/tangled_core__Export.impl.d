lib/core/export.ml: Array Fun List Pipeline String Tangled_hash Tangled_netalyzr Tangled_notary Tangled_pki Tangled_store Tangled_tls Tangled_util Tangled_validation Tangled_x509
