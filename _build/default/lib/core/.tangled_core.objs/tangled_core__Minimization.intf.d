lib/core/minimization.mli: Pipeline Tangled_store
