lib/core/report.ml: Buffer Figure1 Figure2 Figure3 Filename List Minimization Pinning_study Scoping Table1 Table2 Table3 Table4 Table5 Table6 Tangled_util
