lib/core/pinning_study.mli: Pipeline
