lib/core/figure3.ml: Array Buffer List Pipeline Printf Tangled_notary Tangled_pki Tangled_util
