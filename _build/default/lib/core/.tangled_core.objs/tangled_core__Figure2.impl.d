lib/core/figure2.ml: Array Buffer Hashtbl List Option Pipeline Printf Stdlib String Tangled_netalyzr Tangled_notary Tangled_pki Tangled_util Tangled_x509
