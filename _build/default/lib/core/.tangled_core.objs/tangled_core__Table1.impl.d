lib/core/table1.ml: List Pipeline Tangled_pki Tangled_store Tangled_util
