lib/core/sensitivity.mli: Pipeline
