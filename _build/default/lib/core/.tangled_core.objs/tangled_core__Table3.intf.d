lib/core/table3.mli: Pipeline
