lib/core/table6.ml: List Option Pipeline Printf Stdlib Tangled_netalyzr Tangled_pki Tangled_tls Tangled_util Tangled_x509
