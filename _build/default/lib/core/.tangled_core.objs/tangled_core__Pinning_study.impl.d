lib/core/pinning_study.ml: List Option Pipeline Printf Stdlib Tangled_netalyzr Tangled_pki Tangled_tls Tangled_util
