lib/core/figure1.mli: Pipeline Tangled_pki
