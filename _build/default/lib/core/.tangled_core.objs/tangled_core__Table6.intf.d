lib/core/table6.mli: Pipeline
