lib/core/sensitivity.ml: Array List Option Pipeline Printf Stdlib String Tangled_netalyzr Tangled_notary Tangled_pki Tangled_util
