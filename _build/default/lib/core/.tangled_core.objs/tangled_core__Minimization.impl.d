lib/core/minimization.ml: Hashtbl List Option Pipeline Printf Stdlib Tangled_notary Tangled_pki Tangled_store Tangled_util Tangled_x509
