lib/core/pipeline.mli: Lazy Tangled_device Tangled_netalyzr Tangled_notary Tangled_pki
