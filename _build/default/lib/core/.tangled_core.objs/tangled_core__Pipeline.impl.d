lib/core/pipeline.ml: Lazy Tangled_device Tangled_netalyzr Tangled_notary Tangled_pki
