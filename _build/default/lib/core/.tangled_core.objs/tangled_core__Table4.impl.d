lib/core/table4.ml: Array List Pipeline Printf Tangled_notary Tangled_pki Tangled_util
