lib/core/scoping.mli: Pipeline
