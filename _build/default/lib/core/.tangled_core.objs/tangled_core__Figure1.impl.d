lib/core/figure1.ml: Array Buffer Hashtbl List Option Pipeline Printf Stdlib Tangled_netalyzr Tangled_pki Tangled_util
