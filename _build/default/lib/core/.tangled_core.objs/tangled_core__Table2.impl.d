lib/core/table2.ml: List Pipeline Stdlib Tangled_device Tangled_util
