lib/core/table5.ml: Array Hashtbl List Option Pipeline Printf Stdlib Tangled_netalyzr Tangled_pki Tangled_util Tangled_x509
