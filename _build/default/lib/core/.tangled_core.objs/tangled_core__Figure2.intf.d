lib/core/figure2.mli: Pipeline Tangled_pki
