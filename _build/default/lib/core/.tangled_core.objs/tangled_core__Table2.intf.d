lib/core/table2.mli: Pipeline
