module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Net = Tangled_netalyzr.Netalyzr
module Notary = Tangled_notary.Notary
module T = Tangled_util.Text_table
module Stats = Tangled_util.Stats

type stat = {
  name : string;
  paper : float;
  mean : float;
  stddev : float;
  values : float list;
}

let headline_values (w : Pipeline.t) =
  let u = w.Pipeline.universe in
  let notary = w.Pipeline.notary in
  let unexpired = float_of_int (Stdlib.max 1 (Notary.unexpired notary)) in
  let store_frac store =
    float_of_int (Notary.validated_by_store notary store) /. unexpired
  in
  let zero44 =
    let counts =
      Notary.counts_for_certs notary (BP.store_of_category u "AOSP 4.4 certs")
    in
    Stats.fraction (fun c -> c = 0.0) counts
  in
  [
    ("extended sessions", 0.39, Net.extended_fraction w.Pipeline.dataset);
    ("rooted sessions", 0.24, Net.rooted_fraction w.Pipeline.dataset);
    ("AOSP 4.4 validated fraction", 0.744398, store_frac (u.BP.aosp PD.V4_4));
    ("Mozilla validated fraction", 0.744069, store_frac u.BP.mozilla);
    ("iOS 7 validated fraction", 0.745736, store_frac u.BP.ios7);
    ("AOSP 4.4 roots validating nothing", 0.23, zero44);
  ]

let compute ?(seeds = [ 2; 3; 4 ]) ?config (base : Pipeline.t) =
  let config = Option.value ~default:base.Pipeline.config config in
  let worlds =
    List.map
      (fun seed ->
        Pipeline.run
          ~config:{ config with Pipeline.seed }
          ~universe:base.Pipeline.universe ())
      seeds
  in
  let per_world = List.map headline_values (base :: worlds) in
  match per_world with
  | [] -> []
  | first :: _ ->
      List.mapi
        (fun i (name, paper, _) ->
          let values = List.map (fun hv -> let _, _, v = List.nth hv i in v) per_world in
          let arr = Array.of_list values in
          { name; paper; mean = Stats.mean arr; stddev = Stats.stddev arr; values })
        first

let render stats =
  T.render
    ~title:"Seed sensitivity: headline statistics across independent worlds"
    ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ]
    ~header:[ "Statistic"; "paper"; "mean"; "stddev"; "runs" ]
    (List.map
       (fun s ->
         [
           s.name;
           T.fmt_pct s.paper;
           T.fmt_pct s.mean;
           Printf.sprintf "%.2fpp" (s.stddev *. 100.0);
           string_of_int (List.length s.values);
         ])
       stats)

let csv stats =
  ( [ "statistic"; "paper"; "mean"; "stddev"; "values" ],
    List.map
      (fun s ->
        [
          s.name;
          Printf.sprintf "%.6f" s.paper;
          Printf.sprintf "%.6f" s.mean;
          Printf.sprintf "%.6f" s.stddev;
          String.concat ";" (List.map (Printf.sprintf "%.6f") s.values);
        ])
      stats )
