module PD = Tangled_pki.Paper_data
module Net = Tangled_netalyzr.Netalyzr
module Handshake = Tangled_tls.Handshake
module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module T = Tangled_util.Text_table

type row = {
  host : string;
  port : int;
  intercepted : bool;
  trusted_by_device : bool;
  anchor : string option;
}

type t = {
  rows : row list;
  proxy_host : string;
  proxied_sessions : int;
}

let compute (w : Pipeline.t) =
  let d = w.Pipeline.dataset in
  let intercepted = Net.intercepted_sessions d in
  let rows =
    match intercepted with
    | [] -> []
    | (s : Net.session) :: _ ->
        s.Net.probes
        |> List.map (fun (o : Handshake.outcome) ->
               {
                 host = o.Handshake.host;
                 port = o.Handshake.port;
                 intercepted = o.Handshake.intercepted;
                 trusted_by_device =
                   (match o.Handshake.verdict with Ok _ -> true | Error _ -> false);
                 anchor =
                   (match o.Handshake.verdict with
                   | Ok root -> Some (Dn.to_string root.C.subject)
                   | Error _ -> (
                       (* report who signed the presented chain anyway *)
                       match o.Handshake.presented with
                       | leaf :: _ -> Some (Dn.to_string leaf.C.issuer)
                       | [] -> None));
               })
        |> List.sort (fun a b -> Stdlib.compare (a.intercepted, a.host) (b.intercepted, b.host))
  in
  {
    rows;
    proxy_host = PD.interceptor_proxy_host;
    proxied_sessions = List.length intercepted;
  }

let render t =
  let fmt_rows pred =
    t.rows
    |> List.filter pred
    |> List.map (fun r -> Printf.sprintf "%s:%d" r.host r.port)
  in
  let intercepted = fmt_rows (fun r -> r.intercepted) in
  let whitelisted = fmt_rows (fun r -> not r.intercepted) in
  let n = Stdlib.max (List.length intercepted) (List.length whitelisted) in
  let nth l i = if i < List.length l then List.nth l i else "" in
  let body =
    List.init n (fun i -> [ nth intercepted i; nth whitelisted i ])
  in
  T.render
    ~title:
      (Printf.sprintf
         "Table 6: Domains intercepted and whitelisted by the %s proxy (%d proxied sessions)"
         t.proxy_host t.proxied_sessions)
    ~header:[ "Intercepted domains"; "Whitelisted domains" ]
    body
  ^ "\nEvery intercepted chain failed device-store validation (untrusted proxy root);\n"
  ^ "whitelisted chains validated normally.\n"

let csv t =
  ( [ "host"; "port"; "intercepted"; "trusted_by_device"; "anchor" ],
    List.map
      (fun r ->
        [
          r.host;
          string_of_int r.port;
          string_of_bool r.intercepted;
          string_of_bool r.trusted_by_device;
          Option.value ~default:"" r.anchor;
        ])
      t.rows )
