module PD = Tangled_pki.Paper_data
module Net = Tangled_netalyzr.Netalyzr
module T = Tangled_util.Text_table

type point = {
  manufacturer : string;
  os_version : PD.android_version;
  aosp_present : int;
  additional : int;
  sessions : int;
}

type t = {
  points : point list;
  extended_fraction : float;
  handsets_missing : int;
  heavy_fraction : (string * PD.android_version * float) list;
}

let compute (w : Pipeline.t) =
  let d = w.Pipeline.dataset in
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun (s : Net.session) ->
      let key = (s.Net.manufacturer, s.Net.identity.Net.os_version, s.Net.aosp_present, s.Net.additional) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    d.Net.sessions;
  let points =
    Hashtbl.fold
      (fun (manufacturer, os_version, aosp_present, additional) sessions acc ->
        { manufacturer; os_version; aosp_present; additional; sessions } :: acc)
      tbl []
    |> List.sort (fun a b -> Stdlib.compare b.sessions a.sessions)
  in
  let missing_handsets = Hashtbl.create 16 in
  Array.iter
    (fun (s : Net.session) ->
      if s.Net.missing > 0 then Hashtbl.replace missing_handsets s.Net.handset_id ())
    d.Net.sessions;
  let heavy_fraction =
    List.concat_map
      (fun (m, versions) ->
        List.map
          (fun v ->
            let of_row =
              Array.to_list d.Net.sessions
              |> List.filter (fun (s : Net.session) ->
                     s.Net.manufacturer = m && s.Net.identity.Net.os_version = v)
            in
            let heavy =
              List.filter (fun (s : Net.session) -> s.Net.additional > 40) of_row
            in
            let frac =
              if of_row = [] then 0.0
              else float_of_int (List.length heavy) /. float_of_int (List.length of_row)
            in
            (m, v, frac))
          versions)
      PD.heavy_extenders
  in
  {
    points;
    extended_fraction = Net.extended_fraction d;
    handsets_missing = Hashtbl.length missing_handsets;
    heavy_fraction;
  }

let glyph_of_manufacturer = function
  | "SAMSUNG" -> 'S'
  | "HTC" -> 'H'
  | "LG" -> 'L'
  | "MOTOROLA" -> 'M'
  | "ASUS" -> 'A'
  | "SONY" -> 'Y'
  | _ -> 'o'

let render t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "Figure 1: AOSP certificates (x) vs additional certificates (y)\n";
  List.iter
    (fun v ->
      let pts =
        t.points
        |> List.filter (fun p -> p.os_version = v)
        |> List.map (fun p ->
               ( float_of_int p.aosp_present,
                 sqrt (float_of_int p.additional),
                 glyph_of_manufacturer p.manufacturer ))
        |> Array.of_list
      in
      if Array.length pts > 0 then begin
        Buffer.add_string b
          (Tangled_util.Text_plot.scatter ~width:60 ~height:12
             ~title:(Printf.sprintf "-- Android %s --" (PD.version_to_string v))
             ~xlabel:"AOSP certs" ~ylabel:"sqrt(additional certs)" pts);
        Buffer.add_char b '\n'
      end)
    PD.android_versions;
  Buffer.add_string b
    (Printf.sprintf "Sessions with extended stores: %s (paper: 39%%)\n"
       (T.fmt_pct t.extended_fraction));
  Buffer.add_string b
    (Printf.sprintf "Handsets missing AOSP certificates: %d (paper: 5)\n"
       t.handsets_missing);
  Buffer.add_string b "Heavy extender rows (fraction of sessions with >40 additions):\n";
  List.iter
    (fun (m, v, f) ->
      Buffer.add_string b
        (Printf.sprintf "  %-10s %s: %s\n" m (PD.version_to_string v) (T.fmt_pct f)))
    t.heavy_fraction;
  Buffer.contents b

let csv t =
  ( [ "manufacturer"; "os_version"; "aosp_certs"; "additional_certs"; "sessions" ],
    List.map
      (fun p ->
        [
          p.manufacturer;
          PD.version_to_string p.os_version;
          string_of_int p.aosp_present;
          string_of_int p.additional;
          string_of_int p.sessions;
        ])
      t.points )
