module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Notary = Tangled_notary.Notary
module Ecdf = Tangled_util.Stats.Ecdf
module T = Tangled_util.Text_table

type series = {
  category : string;
  ecdf : Ecdf.t;
  zero_offset : float;
}

(* The categories Figure 3 plots (a subset of Table 4's, plus the
   aggregated-Android curve). *)
let categories =
  [
    "AOSP 4.1 certs";
    "AOSP 4.4 certs";
    "AOSP 4.4 and Mozilla root certs";
    "Mozilla root store certs";
    "iOS 7 root store certs";
    "Aggregated Android root certs";
    "Non AOSP and Non Mozilla root certs";
    "Non AOSP root certs found on Mozilla's";
  ]

let compute (w : Pipeline.t) =
  let notary = w.Pipeline.notary in
  List.map
    (fun category ->
      let certs = BP.store_of_category w.Pipeline.universe category in
      let counts = Notary.counts_for_certs notary certs in
      let ecdf = Ecdf.of_values counts in
      { category; ecdf; zero_offset = Ecdf.value_at_zero ecdf })
    categories

let glyphs = [| 'a'; 'b'; 'c'; 'd'; 'e'; 'f'; 'g'; 'h' |]

let render series =
  let b = Buffer.create 4096 in
  let plot_series =
    List.mapi
      (fun i s ->
        (s.category, glyphs.(i mod Array.length glyphs), Ecdf.support s.ecdf))
      series
  in
  Buffer.add_string b
    (Tangled_util.Text_plot.ecdf_lines ~width:70 ~height:18 ~log_x:true
       ~title:"Figure 3: ECDF of Notary certificates validated per root certificate"
       plot_series);
  Buffer.add_string b "\nY-axis offsets (fraction of roots validating nothing):\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "  %-45s %s\n" s.category (T.fmt_pct s.zero_offset)))
    series;
  Buffer.contents b

let csv series =
  ( [ "category"; "validated_count"; "cumulative_probability" ],
    List.concat_map
      (fun s ->
        Ecdf.support s.ecdf |> Array.to_list
        |> List.map (fun (x, p) ->
               [ s.category; Printf.sprintf "%.0f" x; Printf.sprintf "%.6f" p ]))
      series )
