module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Net = Tangled_netalyzr.Netalyzr
module Notary = Tangled_notary.Notary
module T = Tangled_util.Text_table

type row_kind = By_manufacturer | By_operator

type cell = {
  row : string;
  row_kind : row_kind;
  cert_name : string;
  cert_id : string;
  frequency : float;
  notary_class : PD.notary_class;
}

type t = {
  cells : cell list;
  class_mix : (PD.notary_class * float) list;
}

let compute ?(min_row_sessions = 10) (w : Pipeline.t) =
  let d = w.Pipeline.dataset in
  let universe = w.Pipeline.universe in
  let notary = w.Pipeline.notary in
  (* accumulate per-row: modified-session count, and per-cert count *)
  let row_sessions = Hashtbl.create 64 in
  let row_cert = Hashtbl.create 256 in
  let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  Array.iter
    (fun (s : Net.session) ->
      if s.Net.additional > 0 then begin
        let rows =
          [
            ( Printf.sprintf "%s %s" s.Net.manufacturer
                (PD.version_to_string s.Net.identity.Net.os_version),
              By_manufacturer );
            (s.Net.operator, By_operator);
          ]
        in
        List.iter (fun row -> bump row_sessions row) rows;
        List.iter
          (fun id -> List.iter (fun row -> bump row_cert (row, id)) rows)
          s.Net.additional_ids
      end)
    d.Net.sessions;
  let cells =
    Hashtbl.fold
      (fun ((row, kind), id) count acc ->
        let total = Option.value ~default:0 (Hashtbl.find_opt row_sessions (row, kind)) in
        if total < min_row_sessions then acc
        else begin
          match Hashtbl.find_opt universe.BP.extra_by_id id with
          | None -> acc
          | Some root ->
              let x = Option.get root.BP.extra in
              {
                row;
                row_kind = kind;
                cert_name = x.PD.xc_name;
                cert_id = id;
                frequency = float_of_int count /. float_of_int total;
                notary_class =
                  Notary.classify notary
                    root.BP.authority.Tangled_x509.Authority.certificate;
              }
              :: acc
        end)
      row_cert []
    |> List.sort (fun a b -> Stdlib.compare (a.row, a.cert_id) (b.row, b.cert_id))
  in
  (* the legend mix: share of plotted markers per class, as one reads
     the published figure *)
  let total_cells = float_of_int (Stdlib.max 1 (List.length cells)) in
  let class_mix =
    [ PD.Mozilla_and_ios; PD.Ios_only; PD.Android_only; PD.Unrecorded ]
    |> List.map (fun cls ->
           let n = List.length (List.filter (fun c -> c.notary_class = cls) cells) in
           (cls, float_of_int n /. total_cells))
  in
  { cells; class_mix }

let render ?(max_rows = 60) t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "Figure 2: additional certificates per manufacturer/operator row\n";
  Buffer.add_string b "Notary classification of plotted markers:\n";
  List.iter
    (fun (cls, frac) ->
      Buffer.add_string b
        (Printf.sprintf "  %-30s %s\n" (PD.notary_class_to_string cls) (T.fmt_pct frac)))
    t.class_mix;
  Buffer.add_string b "  (paper: 6.7% Mozilla+iOS7, 16.2% iOS7, 37.1% Android-only, 40.0% unrecorded)\n\n";
  let shown = List.filteri (fun i _ -> i < max_rows) t.cells in
  Buffer.add_string b
    (T.render
       ~aligns:[ T.Left; T.Left; T.Left; T.Right; T.Left ]
       ~header:[ "Row"; "Certificate"; "Id"; "Freq"; "Notary class" ]
       (List.map
          (fun c ->
            [
              c.row;
              (if String.length c.cert_name > 38 then String.sub c.cert_name 0 38
               else c.cert_name);
              c.cert_id;
              T.fmt_pct c.frequency;
              PD.notary_class_to_string c.notary_class;
            ])
          shown));
  if List.length t.cells > max_rows then
    Buffer.add_string b
      (Printf.sprintf "\n(%d of %d cells shown; full data in the CSV dump)\n" max_rows
         (List.length t.cells));
  Buffer.contents b

let csv t =
  ( [ "row"; "row_kind"; "cert_name"; "cert_id"; "frequency"; "notary_class" ],
    List.map
      (fun c ->
        [
          c.row;
          (match c.row_kind with By_manufacturer -> "manufacturer" | By_operator -> "operator");
          c.cert_name;
          c.cert_id;
          Printf.sprintf "%.4f" c.frequency;
          PD.notary_class_to_string c.notary_class;
        ])
      t.cells )
