module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module Scope = Tangled_store.Trust_scope
module C = Tangled_x509.Certificate
module Notary = Tangled_notary.Notary
module Net = Tangled_netalyzr.Netalyzr
module T = Tangled_util.Text_table

type row = {
  store : string;
  anchors_android : int;
  anchors_scoped : int;
  coverage_android : float;
  coverage_scoped : float;
}

type t = {
  rows : row list;
  device_extra_reduction : float;
}

let compute (w : Pipeline.t) =
  let u = w.Pipeline.universe in
  let notary = w.Pipeline.notary in
  let unexpired = float_of_int (Stdlib.max 1 (Notary.unexpired notary)) in
  let stores =
    List.map (fun v -> ("AOSP " ^ PD.version_to_string v, u.BP.aosp v)) PD.android_versions
    @ [ ("Mozilla", u.BP.mozilla); ("iOS 7", u.BP.ios7) ]
  in
  let rows =
    List.map
      (fun (name, store) ->
        let scoped = Scope.restrict store Scope.Tls_server Scope.infer in
        {
          store = name;
          anchors_android = Rs.cardinal store;
          anchors_scoped = Rs.cardinal scoped;
          coverage_android =
            float_of_int (Notary.validated_by_store notary store) /. unexpired;
          coverage_scoped =
            float_of_int (Notary.validated_by_store notary scoped) /. unexpired;
        })
      stores
  in
  (* how many of the extras observed on devices would scoping strip of
     TLS trust, weighted by the sessions carrying them *)
  let total = ref 0 and stripped = ref 0 in
  Array.iter
    (fun (s : Net.session) ->
      List.iter
        (fun id ->
          match Hashtbl.find_opt u.BP.extra_by_id id with
          | Some root ->
              incr total;
              let cert = root.BP.authority.Tangled_x509.Authority.certificate in
              if not (List.mem Scope.Tls_server (Scope.infer cert)) then incr stripped
          | None -> ())
        s.Net.additional_ids)
    w.Pipeline.dataset.Net.sessions;
  {
    rows;
    device_extra_reduction =
      (if !total = 0 then 0.0 else float_of_int !stripped /. float_of_int !total);
  }

let render t =
  T.render
    ~title:"Scoped trust (§8): TLS anchors under Mozilla-style usage scoping"
    ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ]
    ~header:
      [ "Store"; "TLS anchors (Android)"; "TLS anchors (scoped)"; "coverage"; "scoped coverage" ]
    (List.map
       (fun r ->
         [
           r.store;
           string_of_int r.anchors_android;
           string_of_int r.anchors_scoped;
           T.fmt_pct r.coverage_android;
           T.fmt_pct r.coverage_scoped;
         ])
       t.rows)
  ^ Printf.sprintf
      "\nDevice-store extras stripped of TLS trust by scoping: %s of observed\n\
       (session, extra) pairs — special-purpose roots (FOTA, SUPL, UTI, code\n\
       signing, operator APIs) stop being MITM-capable.  The small coverage\n\
       dip above is the price of inferring scopes from names; a deployment\n\
       with declared trust bits (Mozilla-style) would pay none of it.\n"
      (T.fmt_pct t.device_extra_reduction)

let csv t =
  ( [ "store"; "anchors_android"; "anchors_scoped"; "coverage_android"; "coverage_scoped" ],
    List.map
      (fun r ->
        [
          r.store;
          string_of_int r.anchors_android;
          string_of_int r.anchors_scoped;
          Printf.sprintf "%.6f" r.coverage_android;
          Printf.sprintf "%.6f" r.coverage_scoped;
        ])
      t.rows )
