(** Store minimization (§5.3).

    The paper observes that 23% of AOSP 4.4 roots validate none of the
    Notary's certificates and that "one could seemingly disable these
    certificates with little negative effect" (confirming Perl et al.).
    This analysis performs the experiment: disable every zero-validation
    root and re-measure coverage. *)

type row = {
  store : string;
  total : int;
  removable : int;            (** roots validating no Notary certificate *)
  coverage_before : float;    (** validated fraction of unexpired chains *)
  coverage_after : float;     (** same, with removable roots disabled *)
}

val compute : Pipeline.t -> row list
(** One row per official store. *)

val minimized_store :
  Pipeline.t -> Tangled_store.Root_store.t -> Tangled_store.Root_store.t
(** The store with every zero-validation root disabled through the
    Settings UI — exactly what a cautious user could do by hand (§2). *)

val render : row list -> string
val csv : row list -> string list * string list list
