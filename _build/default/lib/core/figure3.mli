(** Figure 3 — ECDF of the number of Notary certificates each root
    certificate validates, per root-store category.  The y-intercept of
    each curve is the fraction of roots validating nothing (Table 4). *)

type series = {
  category : string;
  ecdf : Tangled_util.Stats.Ecdf.t;
  zero_offset : float;
}

val compute : Pipeline.t -> series list
val render : series list -> string
(** Log-x ASCII plot plus the per-category y-offsets. *)

val csv : series list -> string list * string list list
(** Long-form step data: category, x, cumulative probability. *)
