module Pop = Tangled_device.Population
module T = Tangled_util.Text_table

type t = {
  top_devices : (string * int) list;
  top_manufacturers : (string * int) list;
}

let take n l = List.filteri (fun i _ -> i < n) l

let compute ?(top = 5) (w : Pipeline.t) =
  let pop = w.Pipeline.population in
  let devices =
    Pop.sessions_by_model pop
    |> List.map (fun (model, manufacturer, sessions) ->
           (manufacturer ^ " " ^ model, sessions))
    |> take top
  in
  let manufacturers = take top (Pop.sessions_by_manufacturer pop) in
  { top_devices = devices; top_manufacturers = manufacturers }

let render t =
  let n = Stdlib.max (List.length t.top_devices) (List.length t.top_manufacturers) in
  let nth l i = if i < List.length l then List.nth l i else ("", 0) in
  let rows =
    List.init n (fun i ->
        let dm, dn = nth t.top_devices i in
        let mm, mn = nth t.top_manufacturers i in
        [ dm; (if dn = 0 then "" else T.fmt_int dn);
          mm; (if mn = 0 then "" else T.fmt_int mn) ])
  in
  T.render ~title:"Table 2: Top 5 mobile devices and manufacturers (sessions)"
    ~aligns:[ T.Left; T.Right; T.Left; T.Right ]
    ~header:[ "Device model"; "No. sessions"; "Manufacturer"; "No. sessions" ]
    rows

let csv t =
  ( [ "rank"; "device"; "device_sessions"; "manufacturer"; "manufacturer_sessions" ],
    List.mapi
      (fun i ((dm, dn), (mm, mn)) ->
        [ string_of_int (i + 1); dm; string_of_int dn; mm; string_of_int mn ])
      (List.combine t.top_devices t.top_manufacturers) )
