(** Table 5 — certificate authorities found more frequently on rooted
    than non-rooted handsets (§6), with the rooted-population headline
    numbers. *)

type row = { ca : string; devices : int; paper_devices : int }

type t = {
  rows : row list;
  rooted_session_fraction : float;         (** paper: 0.24 *)
  exclusive_session_fraction : float;
      (** of rooted sessions, those carrying rooted-exclusive certs
          (paper: 0.06) *)
}

val compute : Pipeline.t -> t
val render : t -> string
val csv : t -> string list * string list list
