module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn

type scope =
  | Tls_server
  | Code_signing
  | Email
  | Device_services

let scope_to_string = function
  | Tls_server -> "tls-server"
  | Code_signing -> "code-signing"
  | Email -> "email"
  | Device_services -> "device-services"

let all_scopes = [ Tls_server; Code_signing; Email; Device_services ]

let contains_ci hay needle =
  let lower = String.lowercase_ascii hay in
  let n = String.length needle and h = String.length lower in
  let rec go i = i + n <= h && (String.sub lower i n = needle || go (i + 1)) in
  go 0

(* Subject keywords of the special-purpose roots §5.1/§5.2 discuss. *)
let device_service_markers =
  [ "fota"; "supl"; "uti"; "operator domain"; "widget"; "dnas"; "e2e"; "open channel" ]

let code_signing_markers =
  [ "code"; "software publisher"; "timestamp"; "adobe"; "true credentials"; "mobile device" ]

let email_markers = [ "freemail"; "email"; "keymail"; "client" ]

let infer cert =
  match cert.C.extensions.C.ext_key_usage with
  | Some ekus ->
      List.filter_map
        (function
          | C.Server_auth -> Some Tls_server
          | C.Code_signing -> Some Code_signing
          | C.Email_protection -> Some Email
          | C.Time_stamping -> Some Code_signing
          | C.Client_auth -> Some Email)
        ekus
      |> List.sort_uniq Stdlib.compare
  | None ->
      let subject = Dn.to_string cert.C.subject in
      let matched markers = List.exists (contains_ci subject) markers in
      if matched device_service_markers then [ Device_services ]
      else if matched code_signing_markers then [ Code_signing ]
      else if matched email_markers then [ Email ]
      else
        (* no signal: Android's behaviour — trusted for everything *)
        all_scopes

let restrict store scope scopes_of =
  List.fold_left
    (fun acc cert ->
      if List.mem scope (scopes_of cert) then acc
      else
        match Root_store.disable acc (Root_store.Privileged_app "platform") cert with
        | Ok acc -> acc
        | Error _ -> acc)
    store (Root_store.certs store)
