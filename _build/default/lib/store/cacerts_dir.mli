(** The on-disk layout of Android's system root store.

    Android keeps one PEM file per trusted certificate under
    /system/etc/security/cacerts, named by the OpenSSL subject hash
    with a collision counter: [<8-hex-digits>.<n>] (footnote 2 of the
    paper).  This module reads and writes that layout, so synthetic
    stores round-trip through the same artefact a real device audit
    would collect. *)

val filename_of : Tangled_x509.Certificate.t -> int -> string
(** [filename_of cert n] is ["<subject-hash32>.<n>"]. *)

val write : Root_store.t -> string -> (int, string) result
(** [write store dir] dumps every enabled certificate as one PEM file
    into [dir] (created if missing, existing [*.N] entries removed).
    Returns the number of files written, or an error message on I/O
    failure. *)

val read : name:string -> string -> (Root_store.t, string) result
(** [read ~name dir] loads a store back from a cacerts directory.
    Files that fail to parse are reported, not skipped.  Entries load
    with [User] provenance — on a real device the provenance is not
    recorded on disk, which is part of the paper's point. *)
