module C = Tangled_x509.Certificate
module Pem = Tangled_x509.Pem

let filename_of cert n = Printf.sprintf "%s.%d" (C.subject_hash32 cert) n

let is_cacert_filename name =
  match String.split_on_char '.' name with
  | [ hash; counter ] ->
      String.length hash = 8
      && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) hash
      && int_of_string_opt counter <> None
  | _ -> false

let write store dir =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    if not (Sys.is_directory dir) then Error (dir ^ " is not a directory")
    else begin
      (* clear previous store content, leaving foreign files alone *)
      Array.iter
        (fun name ->
          if is_cacert_filename name then Sys.remove (Filename.concat dir name))
        (Sys.readdir dir);
      let seen = Hashtbl.create 64 in
      let written =
        List.fold_left
          (fun count cert ->
            let hash = C.subject_hash32 cert in
            let n = Option.value ~default:0 (Hashtbl.find_opt seen hash) in
            Hashtbl.replace seen hash (n + 1);
            let path = Filename.concat dir (filename_of cert n) in
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Pem.encode_certificate cert));
            count + 1)
          0 (Root_store.certs store)
      in
      Ok written
    end
  with Sys_error msg -> Error msg

let read ~name dir =
  try
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      Error (dir ^ " is not a directory")
    else begin
      let files =
        Sys.readdir dir |> Array.to_list |> List.filter is_cacert_filename
        |> List.sort compare
      in
      let rec load acc = function
        | [] -> Ok (List.rev acc)
        | file :: rest -> (
            let path = Filename.concat dir file in
            let contents =
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            match Pem.decode_certificate contents with
            | Ok cert -> load (cert :: acc) rest
            | Error msg -> Error (Printf.sprintf "%s: %s" file msg))
      in
      match load [] files with
      | Ok certs -> Ok (Root_store.of_certs name Root_store.User certs)
      | Error _ as e -> e
    end
  with Sys_error msg -> Error msg
