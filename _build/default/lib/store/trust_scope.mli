(** Trust scoping, the paper's §8 recommendation.

    Android (as of the study) applies every root-store certificate to
    every operation, "from TLS server verification to code signing",
    unlike Mozilla's per-trust-bit model (§2).  This module adds the
    missing notion: a scope per certificate, inferred or declared, and
    a filtered view of a store for one operation. *)

type scope =
  | Tls_server       (** WebTrust-style server authentication *)
  | Code_signing
  | Email
  | Device_services  (** FOTA, SUPL, operator APIs — the §5.1 specials *)

val scope_to_string : scope -> string
val all_scopes : scope list

val infer : Tangled_x509.Certificate.t -> scope list
(** Best-effort scope inference from the certificate itself: extended
    key usage when present; otherwise heuristics on the subject (the
    FOTA/SUPL/UTI/timestamping-style names the paper lists as never
    appearing in TLS traffic map to [Device_services] or
    [Code_signing]); a bare CA defaults to every scope, which is
    exactly Android's behaviour. *)

val restrict :
  Root_store.t -> scope -> (Tangled_x509.Certificate.t -> scope list) -> Root_store.t
(** [restrict store scope scopes_of] disables every enabled entry whose
    scopes do not include [scope] — a Mozilla-style view of an Android
    store.  Disabling uses the privileged path (it models a platform
    change, not a user action). *)
