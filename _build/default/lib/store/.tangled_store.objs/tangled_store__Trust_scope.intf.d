lib/store/trust_scope.mli: Root_store Tangled_x509
