lib/store/root_store.ml: Hashtbl List Map Option Printf Stdlib String Tangled_x509
