lib/store/cacerts_dir.ml: Array Filename Fun Hashtbl List Option Printf Root_store String Sys Tangled_x509
