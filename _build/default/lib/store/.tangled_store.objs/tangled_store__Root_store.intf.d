lib/store/root_store.mli: Tangled_x509
