lib/store/trust_scope.ml: List Root_store Stdlib String Tangled_x509
