lib/store/cacerts_dir.mli: Root_store Tangled_x509
