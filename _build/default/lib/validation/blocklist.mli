(** Compromise handling (§2).

    The paper recalls that root-store CAs (Comodo, Türktrust) have been
    compromised, and that Android 4.4 added detection of fraudulently
    issued Google certificates.  This module models both platform
    responses: a public-key blocklist (the DigiNotar treatment) and
    per-subject issuance pins (the 4.4 Google-certificate check), each
    enforceable as an extra gate in front of {!Chain.validate}. *)

type t

val empty : t

val block_key : t -> Tangled_x509.Certificate.t -> t
(** Distrust the certificate's public key: any chain element carrying
    (or signed into existence below) this key is rejected.  Blocking is
    by key, not by certificate bytes, so re-issued variants of a
    compromised CA stay blocked. *)

val pin_issuer : t -> subject_cn:string -> Tangled_x509.Certificate.t -> t
(** [pin_issuer t ~subject_cn ca] records that end-entity certificates
    whose subject CN equals (or is a subdomain of) [subject_cn] must
    chain to [ca]'s key — the Android 4.4 rule for google.com. *)

val blocked_keys : t -> int
val pinned_subjects : t -> int

type rejection =
  | Blocked_key of Tangled_x509.Dn.t
      (** the chain contains a blocklisted public key *)
  | Issuer_pin_violation of string
      (** a pinned subject's chain anchors outside its allowed set *)

val rejection_to_string : rejection -> string

val screen :
  t ->
  chain:Tangled_x509.Certificate.t list ->
  anchor:Tangled_x509.Certificate.t ->
  (unit, rejection) result
(** Gate a successfully-validated chain (leaf first) and its anchor. *)

val validate :
  t ->
  now:Tangled_util.Timestamp.t ->
  store:Tangled_store.Root_store.t ->
  Tangled_x509.Certificate.t list ->
  (Tangled_x509.Certificate.t, [ `Chain of Chain.failure | `Screen of rejection ]) result
(** {!Chain.validate} followed by {!screen}. *)
