module C = Tangled_x509.Certificate
module Dn = Tangled_x509.Dn
module Rsa = Tangled_crypto.Rsa

module Sset = Set.Make (String)

type t = {
  keys : Sset.t;  (** SHA-256 of blocked public-key moduli *)
  pins : (string * Sset.t) list;  (** subject CN suffix -> allowed anchor keys *)
}

let empty = { keys = Sset.empty; pins = [] }

let key_id cert = Tangled_hash.Sha256.digest (Rsa.modulus_bytes cert.C.public_key)

let block_key t cert = { t with keys = Sset.add (key_id cert) t.keys }

let pin_issuer t ~subject_cn ca =
  let allowed =
    match List.assoc_opt subject_cn t.pins with
    | Some set -> Sset.add (key_id ca) set
    | None -> Sset.singleton (key_id ca)
  in
  { t with pins = (subject_cn, allowed) :: List.remove_assoc subject_cn t.pins }

let blocked_keys t = Sset.cardinal t.keys
let pinned_subjects t = List.length t.pins

type rejection =
  | Blocked_key of Dn.t
  | Issuer_pin_violation of string

let rejection_to_string = function
  | Blocked_key dn -> "blocklisted public key: " ^ Dn.to_string dn
  | Issuer_pin_violation cn -> "issuer pin violation for " ^ cn

let suffix_matches ~cn ~pattern =
  cn = pattern
  ||
  let pl = String.length pattern and cl = String.length cn in
  cl > pl + 1 && String.sub cn (cl - pl) pl = pattern && cn.[cl - pl - 1] = '.'

let screen t ~chain ~anchor =
  let all = chain @ [ anchor ] in
  match List.find_opt (fun c -> Sset.mem (key_id c) t.keys) all with
  | Some bad -> Error (Blocked_key bad.C.subject)
  | None -> (
      match chain with
      | [] -> Ok ()
      | leaf :: _ -> (
          match Dn.common_name leaf.C.subject with
          | None -> Ok ()
          | Some cn -> (
              let pin =
                List.find_opt (fun (pattern, _) -> suffix_matches ~cn ~pattern) t.pins
              in
              match pin with
              | None -> Ok ()
              | Some (pattern, allowed) ->
                  if Sset.mem (key_id anchor) allowed then Ok ()
                  else Error (Issuer_pin_violation pattern))))

let validate t ~now ~store chain =
  let result = Chain.validate ~now ~store chain in
  match result.Chain.verdict with
  | Error f -> Error (`Chain f)
  | Ok anchor -> (
      match screen t ~chain:result.Chain.path ~anchor with
      | Ok () -> Ok anchor
      | Error r -> Error (`Screen r))
