lib/validation/blocklist.mli: Chain Tangled_store Tangled_util Tangled_x509
