lib/validation/chain.ml: List Option Stdlib Tangled_store Tangled_util Tangled_x509
