lib/validation/chain.mli: Stdlib Tangled_store Tangled_util Tangled_x509
