lib/validation/blocklist.ml: Chain List Set String Tangled_crypto Tangled_hash Tangled_x509
