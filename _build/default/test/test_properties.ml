(* Additional property tests over the X.509 layer and DER streaming. *)

module Dn = Tangled_x509.Dn
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module Der = Tangled_asn1.Der
module Oid = Tangled_asn1.Oid
module B = Tangled_numeric.Bigint
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- random DN roundtrips -------------------------------------------- *)

let gen_name =
  QCheck.Gen.(
    map
      (fun chars -> String.concat "" (List.map (String.make 1) chars))
      (list_size (int_range 1 20)
         (oneof [ char_range 'a' 'z'; char_range 'A' 'Z'; char_range '0' '9'; return ' ' ])))

let gen_dn =
  QCheck.Gen.(
    map2
      (fun cn (o, c) ->
        (* country must be PrintableString-safe and short in practice *)
        Dn.make ?o ?c cn)
      gen_name
      (pair (opt gen_name) (opt (map (fun c -> String.make 2 c) (char_range 'A' 'Z')))))

let prop_dn_roundtrip =
  QCheck.Test.make ~name:"DN DER roundtrip" ~count:300 (QCheck.make gen_dn) (fun dn ->
      match Dn.of_der (Dn.to_der dn) with
      | Some dn' -> Dn.equal dn dn'
      | None -> false)

let prop_dn_string_injective_enough =
  QCheck.Test.make ~name:"distinct DNs render distinctly" ~count:200
    (QCheck.make (QCheck.Gen.pair gen_dn gen_dn))
    (fun (a, b) ->
      QCheck.assume (not (Dn.equal a b));
      Dn.to_string a <> Dn.to_string b)

(* --- issuance properties ----------------------------------------------- *)

let issuer = lazy (Authority.self_signed ~bits:512 (Prng.create 640) (Dn.make "Prop Root"))

let prop_issued_leaves_validate =
  QCheck.Test.make ~name:"every issued leaf verifies under its issuer" ~count:15
    QCheck.small_nat
    (fun n ->
      let root = Lazy.force issuer in
      let rng = Prng.create (1_000 + n) in
      let dns = Printf.sprintf "site%d.example" n in
      let leaf = Authority.issue_leaf ~bits:512 rng ~parent:root ~dns_names:[ dns ] (Dn.make dns) in
      C.verify_signature leaf ~issuer_key:root.Authority.key.Tangled_crypto.Rsa.pub
      && (match C.decode (C.encode leaf) with
         | Ok c -> C.byte_identity c = C.byte_identity leaf
         | Error _ -> false))

let test_reissue_as () =
  let rng = Prng.create 641 in
  let root = Lazy.force issuer in
  let mitm = Authority.self_signed ~bits:512 rng (Dn.make "MITM Root") in
  let orig =
    Authority.issue_leaf ~bits:512 rng ~parent:root ~dns_names:[ "bank.example" ]
      ~not_before:(Ts.of_date 2013 1 1) ~not_after:(Ts.of_date 2015 1 1)
      (Dn.make "bank.example")
  in
  let fc = Authority.reissue_as ~bits:512 rng ~parent:mitm orig in
  Alcotest.(check bool) "subject preserved" true (Dn.equal fc.C.subject orig.C.subject);
  check Alcotest.int "validity preserved (nb)" orig.C.not_before fc.C.not_before;
  check Alcotest.int "validity preserved (na)" orig.C.not_after fc.C.not_after;
  Alcotest.(check bool) "fresh key" true
    (C.equivalence_key fc <> C.equivalence_key orig);
  Alcotest.(check bool) "signed by mitm" true
    (C.verify_signature fc ~issuer_key:mitm.Authority.key.Tangled_crypto.Rsa.pub);
  Alcotest.(check bool) "not by original issuer" false
    (C.verify_signature fc ~issuer_key:root.Authority.key.Tangled_crypto.Rsa.pub)

(* --- DER streaming -------------------------------------------------------- *)

let test_decode_prefix () =
  let a = Der.encode (Der.Integer (B.of_int 7)) in
  let b = Der.encode Der.Null in
  let joined = a ^ b in
  (match Der.decode_prefix joined 0 with
  | Ok (Der.Integer v, stop) ->
      Alcotest.(check bool) "first value" true (B.equal v (B.of_int 7));
      check Alcotest.int "offset" (String.length a) stop;
      (match Der.decode_prefix joined stop with
      | Ok (Der.Null, stop2) -> check Alcotest.int "end" (String.length joined) stop2
      | _ -> Alcotest.fail "second value")
  | _ -> Alcotest.fail "first value");
  match Der.decode_prefix joined (String.length joined) with
  | Error Der.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated at end"

let prop_oid_der_roundtrip =
  QCheck.Test.make ~name:"OID DER roundtrip" ~count:300
    QCheck.(
      pair (int_range 0 2)
        (pair (int_range 0 39) (list_of_size (Gen.int_range 0 6) (int_range 0 1_000_000))))
    (fun (a, (b, rest)) ->
      let oid = Oid.of_arcs (a :: b :: rest) in
      match Oid.of_der_content (Oid.to_der_content oid) with
      | Some oid' -> Oid.equal oid oid'
      | None -> false)

(* --- certificate extension roundtrips ---------------------------------------- *)

let test_basic_constraints_pathlen_roundtrip () =
  let rng = Prng.create 642 in
  let ca = Authority.self_signed ~bits:512 ~path_len:3 rng (Dn.make "Pathlen Root") in
  match C.decode (C.encode ca.Authority.certificate) with
  | Ok c ->
      Alcotest.(check bool) "pathlen preserved" true
        (c.C.extensions.C.basic_constraints = Some (true, Some 3))
  | Error m -> Alcotest.fail m

let test_ski_aki_linkage () =
  let rng = Prng.create 643 in
  let root = Authority.self_signed ~bits:512 rng (Dn.make "Link Root") in
  let inter = Authority.issue_intermediate ~bits:512 rng ~parent:root (Dn.make "Link Inter") in
  let rc = root.Authority.certificate and ic = inter.Authority.certificate in
  (* the child's AKI names the parent's SKI *)
  check (Alcotest.option Alcotest.string) "aki = parent ski"
    rc.C.extensions.C.subject_key_id ic.C.extensions.C.authority_key_id

let suite =
  [
    ("reissue_as (MITM forge)", `Quick, test_reissue_as);
    ("DER decode_prefix streaming", `Quick, test_decode_prefix);
    ("basicConstraints pathlen roundtrip", `Quick, test_basic_constraints_pathlen_roundtrip);
    ("SKI/AKI linkage", `Quick, test_ski_aki_linkage);
    qtest prop_dn_roundtrip;
    qtest prop_dn_string_injective_enough;
    qtest prop_issued_leaves_validate;
    qtest prop_oid_der_roundtrip;
  ]
