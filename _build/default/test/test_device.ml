(* Tests for the device layer: firmware assembly, apps, population. *)

module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Firmware = Tangled_device.Firmware
module Apps = Tangled_device.Apps
module Pop = Tangled_device.Population
module Prng = Tangled_util.Prng

let check = Alcotest.check

let universe = lazy (Lazy.force BP.default)
let generic = lazy (Firmware.generic_assignment (Lazy.force universe))

(* A small shared population: ~2k sessions. *)
let population =
  lazy (Pop.generate ~target_sessions:2_000 ~seed:2 (Lazy.force universe))

(* --- firmware ---------------------------------------------------------- *)

let test_firmware_contains_baseline () =
  let u = Lazy.force universe in
  let rng = Prng.create 1 in
  let store =
    Firmware.assemble rng u (Lazy.force generic)
      { Firmware.manufacturer = "SAMSUNG"; os_version = PD.V4_4; operator = "VODAFONE(DE)" }
  in
  let _, missing = Rs.diff store (u.BP.aosp PD.V4_4) in
  check Alcotest.int "no baseline cert missing" 0 (List.length missing);
  Alcotest.(check bool) "extends baseline" true
    (Rs.cardinal store >= Rs.cardinal (u.BP.aosp PD.V4_4))

let test_vendor_placement () =
  let u = Lazy.force universe in
  (* Motorola ships its FOTA/SUPL roots on every version *)
  let eligible =
    Firmware.vendor_extras u (Lazy.force generic)
      { Firmware.manufacturer = "MOTOROLA"; os_version = PD.V4_1; operator = "VERIZON(US)" }
  in
  let names = List.map (fun ((r : BP.root), _) -> r.BP.display_name) eligible in
  Alcotest.(check bool) "FOTA present" true (List.mem "Motorola FOTA Root CA" names);
  Alcotest.(check bool) "SUPL present" true (List.mem "Motorola SUPL Server Root CA" names);
  (* Verizon Motorola 4.1 carries the CertiSign group (§5.1) *)
  Alcotest.(check bool) "Certisign present" true (List.mem "Certisign AC1S" names);
  (* but an AT&T Motorola does not *)
  let att =
    Firmware.vendor_extras u (Lazy.force generic)
      { Firmware.manufacturer = "MOTOROLA"; os_version = PD.V4_1; operator = "AT&T(US)" }
    |> List.map (fun ((r : BP.root), _) -> r.BP.display_name)
  in
  Alcotest.(check bool) "no Certisign on AT&T" false (List.mem "Certisign AC1S" att);
  Alcotest.(check bool) "Microsoft cert on AT&T Motorola" true
    (List.mem "Microsoft Secure Server Authority" att)

let test_carrier_placement () =
  let u = Lazy.force universe in
  let sprint_htc =
    Firmware.vendor_extras u (Lazy.force generic)
      { Firmware.manufacturer = "HTC"; os_version = PD.V4_2; operator = "SPRINT(US)" }
    |> List.map (fun ((r : BP.root), _) -> r.BP.display_name)
  in
  Alcotest.(check bool) "Sprint root rides any Sprint handset" true
    (List.mem "Sprint Nextel Root Authority" sprint_htc);
  (* HTC vendor-wide additions (AddTrust / DT / DoD, §5.1) *)
  Alcotest.(check bool) "AddTrust on HTC" true
    (List.mem "AddTrust Class 1 CA Root" sprint_htc);
  Alcotest.(check bool) "DoD on HTC" true (List.mem "DoD CLASS 3 Root CA" sprint_htc)

let test_samsung_uti_versions () =
  let u = Lazy.force universe in
  let has_uti version =
    Firmware.vendor_extras u (Lazy.force generic)
      { Firmware.manufacturer = "SAMSUNG"; os_version = version; operator = "3(UK)" }
    |> List.exists (fun ((r : BP.root), _) -> r.BP.display_name = "GeoTrust CA for UTI")
  in
  (* installed on Samsung 4.2/4.3 only (§5.1) *)
  Alcotest.(check bool) "4.2 has UTI" true (has_uti PD.V4_2);
  Alcotest.(check bool) "4.3 has UTI" true (has_uti PD.V4_3);
  Alcotest.(check bool) "4.1 lacks UTI" false (has_uti PD.V4_1);
  Alcotest.(check bool) "4.4 lacks UTI" false (has_uti PD.V4_4)

let test_heavy_vs_light_extenders () =
  let u = Lazy.force universe in
  let eligible_count manufacturer version operator =
    List.length
      (Firmware.vendor_extras u (Lazy.force generic)
         { Firmware.manufacturer; os_version = version; operator })
  in
  (* heavy rows can exceed 40 additions; light vendors stay small *)
  Alcotest.(check bool) "HTC 4.1 heavy" true (eligible_count "HTC" PD.V4_1 "3(UK)" > 40);
  Alcotest.(check bool) "Sony light" true (eligible_count "SONY" PD.V4_3 "3(UK)" < 10);
  Alcotest.(check bool) "Huawei light" true (eligible_count "HUAWEI" PD.V4_2 "3(UK)" < 10)

let test_firmware_determinism () =
  let u = Lazy.force universe in
  let profile =
    { Firmware.manufacturer = "HTC"; os_version = PD.V4_1; operator = "EE(UK)" }
  in
  let s1 = Firmware.assemble (Prng.create 5) u (Lazy.force generic) profile in
  let s2 = Firmware.assemble (Prng.create 5) u (Lazy.force generic) profile in
  check Alcotest.int "same rng, same store" (Rs.cardinal s1) (Rs.cardinal s2);
  Alcotest.(check bool) "same membership" true
    (List.for_all (Rs.mem s2) (Rs.certs s1))

(* --- apps --------------------------------------------------------------- *)

let test_freedom_app () =
  let u = Lazy.force universe in
  let freedom = Apps.freedom u in
  let stock = u.BP.aosp PD.V4_4 in
  (match Apps.run freedom ~rooted:false stock with
  | Apps.Refused (Rs.Permission_denied _) -> ()
  | Apps.Refused e -> Alcotest.fail ("wrong refusal: " ^ Rs.error_to_string e)
  | Apps.Installed _ -> Alcotest.fail "installed without root");
  match Apps.run freedom ~rooted:true stock with
  | Apps.Installed store ->
      check Alcotest.int "one more cert" (Rs.cardinal stock + 1) (Rs.cardinal store);
      Alcotest.(check bool) "ca present" true (Rs.mem store freedom.Apps.ca);
      (* the silent mutation is journalled by the model (the user never
         sees it — the journal is the simulator's omniscient view) *)
      check Alcotest.int "journal entry" 1 (List.length (Rs.journal store))
  | Apps.Refused e -> Alcotest.fail (Rs.error_to_string e)

let test_singleton_apps () =
  let u = Lazy.force universe in
  let apps = Apps.singleton_apps u in
  check Alcotest.int "four singletons" 4 (List.length apps);
  Alcotest.(check bool) "no freedom among them" true
    (List.for_all (fun (a : Apps.t) -> a.Apps.app_name <> "Freedom") apps)

(* --- population ----------------------------------------------------------- *)

let test_population_scale () =
  let pop = Lazy.force population in
  let total = Pop.total_sessions pop in
  Alcotest.(check bool) "close to target" true (abs (total - 2_000) < 200);
  Alcotest.(check bool) "handsets plausible" true
    (Array.length pop.Pop.handsets > 300 && Array.length pop.Pop.handsets < 900)

let test_population_rooted_share () =
  let pop = Lazy.force population in
  let f = Pop.rooted_session_fraction pop in
  Alcotest.(check bool) "rooted ~24%" true (f > 0.18 && f < 0.30)

let test_population_manufacturer_order () =
  let pop = Lazy.force population in
  match Pop.sessions_by_manufacturer pop with
  | (top, _) :: _ -> check Alcotest.string "Samsung leads" "SAMSUNG" top
  | [] -> Alcotest.fail "no manufacturers"

let test_population_top_models () =
  let pop = Lazy.force population in
  let models = Pop.sessions_by_model pop |> List.map (fun (m, _, _) -> m) in
  (* the five named Table 2 models dominate *)
  let top5 = List.filteri (fun i _ -> i < 5) models in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " in top") true (List.mem expected top5))
    [ "Galaxy SIV"; "Galaxy SIII"; "Nexus 4"; "Nexus 5"; "Nexus 7" ]

let test_population_freedom_installs () =
  let pop = Lazy.force population in
  let with_freedom =
    Array.to_list pop.Pop.handsets
    |> List.filter (fun (h : Pop.handset) -> List.mem "Freedom" h.Pop.apps)
  in
  (* ~70 scaled by 2000/15970 ≈ 8–9 devices *)
  Alcotest.(check bool) "scaled freedom installs" true
    (List.length with_freedom >= 5 && List.length with_freedom <= 12);
  List.iter
    (fun (h : Pop.handset) ->
      Alcotest.(check bool) "only rooted handsets" true h.Pop.rooted)
    with_freedom

let test_population_proxied_device () =
  let pop = Lazy.force population in
  let proxied =
    Array.to_list pop.Pop.handsets |> List.filter (fun (h : Pop.handset) -> h.Pop.proxied)
  in
  check Alcotest.int "exactly one participant" 1 (List.length proxied);
  match proxied with
  | [ h ] ->
      check Alcotest.string "a Nexus 7" "Nexus 7" h.Pop.model;
      Alcotest.(check bool) "on 4.4" true (h.Pop.os_version = PD.V4_4)
  | _ -> ()

let test_population_missing_certs () =
  let pop = Lazy.force population in
  let u = Lazy.force universe in
  let missing =
    Array.to_list pop.Pop.handsets
    |> List.filter (fun (h : Pop.handset) ->
           let _, missing = Rs.diff h.Pop.store (u.BP.aosp h.Pop.os_version) in
           missing <> [])
  in
  check Alcotest.int "exactly five handsets missing certs" PD.handsets_missing_certs
    (List.length missing)

let test_population_determinism () =
  let u = Lazy.force universe in
  let p1 = Pop.generate ~target_sessions:300 ~seed:7 u in
  let p2 = Pop.generate ~target_sessions:300 ~seed:7 u in
  check Alcotest.int "same handset count" (Array.length p1.Pop.handsets)
    (Array.length p2.Pop.handsets);
  Array.iteri
    (fun i (h1 : Pop.handset) ->
      let h2 = p2.Pop.handsets.(i) in
      check Alcotest.string "model" h1.Pop.model h2.Pop.model;
      check Alcotest.int "store size" (Rs.cardinal h1.Pop.store) (Rs.cardinal h2.Pop.store))
    p1.Pop.handsets

let suite =
  [
    ("firmware contains baseline", `Quick, test_firmware_contains_baseline);
    ("vendor placement", `Quick, test_vendor_placement);
    ("carrier placement", `Quick, test_carrier_placement);
    ("Samsung UTI versions", `Quick, test_samsung_uti_versions);
    ("heavy vs light extenders", `Quick, test_heavy_vs_light_extenders);
    ("firmware determinism", `Quick, test_firmware_determinism);
    ("freedom app", `Quick, test_freedom_app);
    ("singleton apps", `Quick, test_singleton_apps);
    ("population scale", `Quick, test_population_scale);
    ("population rooted share", `Quick, test_population_rooted_share);
    ("manufacturer ordering", `Quick, test_population_manufacturer_order);
    ("top models", `Quick, test_population_top_models);
    ("freedom installs", `Quick, test_population_freedom_installs);
    ("proxied device", `Quick, test_population_proxied_device);
    ("handsets missing certs", `Quick, test_population_missing_certs);
    ("population determinism", `Slow, test_population_determinism);
  ]
