(* Tests for the TLS layer: endpoint world, handshakes, the proxy. *)

module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Endpoint = Tangled_tls.Endpoint
module Proxy = Tangled_tls.Proxy
module Handshake = Tangled_tls.Handshake
module Chain = Tangled_validation.Chain
module Ts = Tangled_util.Timestamp

let check = Alcotest.check

let universe = lazy (Lazy.force BP.default)
let world = lazy (Endpoint.build_world ~seed:3 (Lazy.force universe))
let proxy =
  lazy
    (Proxy.create ~seed:3 ~interceptor:(Lazy.force universe).BP.interceptor
       (Lazy.force universe))

let now = Ts.paper_epoch
let store () = (Lazy.force universe).BP.aosp PD.V4_4

let test_world_covers_probe_list () =
  let w = Lazy.force world in
  let expected =
    PD.intercepted_domains @ PD.whitelisted_domains |> List.sort_uniq compare
  in
  check Alcotest.int "all probe targets" (List.length expected)
    (List.length (Endpoint.probe_targets w));
  List.iter
    (fun (host, port) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s:%d exists" host port)
        true
        (Endpoint.lookup w ~host ~port <> None))
    expected

let test_endpoint_chains_valid () =
  let w = Lazy.force world in
  List.iter
    (fun (e : Endpoint.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s validates" e.Endpoint.host)
        true
        (Chain.validate_ok ~now ~store:(store ()) e.Endpoint.chain))
    (Endpoint.endpoints w)

let test_direct_handshake () =
  let w = Lazy.force world in
  match
    Handshake.connect (Handshake.Direct w) ~store:(store ()) ~now ~host:"gmail.com"
      ~port:443
  with
  | Some o ->
      Alcotest.(check bool) "trusted" true
        (match o.Handshake.verdict with Ok _ -> true | Error _ -> false);
      Alcotest.(check bool) "not intercepted" false o.Handshake.intercepted
  | None -> Alcotest.fail "gmail unreachable"

let test_unknown_host () =
  let w = Lazy.force world in
  Alcotest.(check bool) "unknown host" true
    (Handshake.connect (Handshake.Direct w) ~store:(store ()) ~now
       ~host:"nonexistent.example" ~port:443
    = None)

let test_proxy_whitelist () =
  let p = Lazy.force proxy in
  Alcotest.(check bool) "supl whitelisted" true
    (Proxy.is_whitelisted p ~host:"supl.google.com" ~port:7275);
  Alcotest.(check bool) "facebook chat whitelisted" true
    (Proxy.is_whitelisted p ~host:"orcart.facebook.com" ~port:8883);
  Alcotest.(check bool) "gmail not whitelisted" false
    (Proxy.is_whitelisted p ~host:"gmail.com" ~port:443);
  (* same host, different port: 443 intercepted, 8883 not (Table 6) *)
  Alcotest.(check bool) "facebook 443 intercepted" false
    (Proxy.is_whitelisted p ~host:"orcart.facebook.com" ~port:443)

let test_proxy_resigns () =
  let w = Lazy.force world and p = Lazy.force proxy in
  let e = Option.get (Endpoint.lookup w ~host:"gmail.com" ~port:443) in
  match Proxy.terminate p e with
  | forged :: _ ->
      (* subject preserved, signer replaced *)
      Alcotest.(check bool) "same subject" true
        (Tangled_x509.Dn.equal forged.C.subject (List.hd e.Endpoint.chain).C.subject);
      Alcotest.(check bool) "issued by MITM CA" true
        (Tangled_x509.Dn.common_name forged.C.issuer = Some "Reality Mine MITM CA");
      Alcotest.(check bool) "bytes differ" true
        (C.byte_identity forged <> C.byte_identity (List.hd e.Endpoint.chain))
  | [] -> Alcotest.fail "empty forged chain"

let test_proxy_cache () =
  let w = Lazy.force world and p = Lazy.force proxy in
  let e = Option.get (Endpoint.lookup w ~host:"www.chase.com" ~port:443) in
  let c1 = Proxy.terminate p e and c2 = Proxy.terminate p e in
  Alcotest.(check bool) "cached chain reused" true
    (C.byte_identity (List.hd c1) = C.byte_identity (List.hd c2))

let test_proxy_passthrough () =
  let w = Lazy.force world and p = Lazy.force proxy in
  let e = Option.get (Endpoint.lookup w ~host:"www.facebook.com" ~port:443) in
  let chain = Proxy.terminate p e in
  Alcotest.(check bool) "whitelisted untouched" true
    (C.byte_identity (List.hd chain) = C.byte_identity (List.hd e.Endpoint.chain))

let test_proxied_handshake_detection () =
  let w = Lazy.force world and p = Lazy.force proxy in
  let t = Handshake.Proxied (w, p) in
  (* intercepted: forged chain, untrusted, flagged *)
  (match Handshake.connect t ~store:(store ()) ~now ~host:"www.yahoo.com" ~port:443 with
  | Some o ->
      Alcotest.(check bool) "flagged" true o.Handshake.intercepted;
      Alcotest.(check bool) "untrusted" true
        (match o.Handshake.verdict with Error _ -> true | Ok _ -> false)
  | None -> Alcotest.fail "yahoo unreachable");
  (* whitelisted: original chain, trusted, unflagged *)
  match Handshake.connect t ~store:(store ()) ~now ~host:"www.google.com" ~port:443 with
  | Some o ->
      Alcotest.(check bool) "not flagged" false o.Handshake.intercepted;
      Alcotest.(check bool) "trusted" true
        (match o.Handshake.verdict with Ok _ -> true | Error _ -> false)
  | None -> Alcotest.fail "google unreachable"

let test_forged_chain_trusted_if_root_installed () =
  (* the §6+§7 interaction: install the interceptor root (privileged
     app) and the forged chains become trusted *)
  let w = Lazy.force world and p = Lazy.force proxy in
  let u = Lazy.force universe in
  let compromised =
    match
      Rs.add (store ()) (Rs.Privileged_app "spyware") (Rs.App "spyware")
        (Proxy.root p)
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Rs.error_to_string e)
  in
  ignore u;
  match
    Handshake.connect (Handshake.Proxied (w, p)) ~store:compromised ~now
      ~host:"www.yahoo.com" ~port:443
  with
  | Some o ->
      Alcotest.(check bool) "still detected as intercepted" true o.Handshake.intercepted;
      Alcotest.(check bool) "but now trusted" true
        (match o.Handshake.verdict with Ok _ -> true | Error _ -> false)
  | None -> Alcotest.fail "unreachable"

let test_table6_partition () =
  (* driving the probe list through the proxy reproduces Table 6's
     exact intercepted/whitelisted partition *)
  let w = Lazy.force world and p = Lazy.force proxy in
  let outcomes =
    Handshake.probe_all (Handshake.Proxied (w, p)) ~store:(store ()) ~now
  in
  List.iter
    (fun (o : Handshake.outcome) ->
      let expected_intercepted =
        List.mem (o.Handshake.host, o.Handshake.port) PD.intercepted_domains
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s:%d" o.Handshake.host o.Handshake.port)
        expected_intercepted o.Handshake.intercepted)
    outcomes

let suite =
  [
    ("world covers probe list", `Quick, test_world_covers_probe_list);
    ("endpoint chains valid", `Quick, test_endpoint_chains_valid);
    ("direct handshake", `Quick, test_direct_handshake);
    ("unknown host", `Quick, test_unknown_host);
    ("proxy whitelist", `Quick, test_proxy_whitelist);
    ("proxy re-signs", `Quick, test_proxy_resigns);
    ("proxy certificate cache", `Quick, test_proxy_cache);
    ("proxy passthrough", `Quick, test_proxy_passthrough);
    ("proxied handshake detection", `Quick, test_proxied_handshake_detection);
    ("forged chain trusted after root install", `Quick, test_forged_chain_trusted_if_root_installed);
    ("Table 6 partition", `Quick, test_table6_partition);
  ]
