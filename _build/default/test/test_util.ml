(* Tests for lib/util: hex, prng, stats, text rendering, csv, timestamps. *)

open Tangled_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- hex ------------------------------------------------------------- *)

let test_hex_roundtrip () =
  check Alcotest.string "encode" "00ff10" (Hex.encode "\x00\xff\x10");
  check Alcotest.string "decode" "\x00\xff\x10" (Hex.decode "00ff10");
  check Alcotest.string "decode upper" "\xab\xcd" (Hex.decode "ABCD");
  check Alcotest.string "empty" "" (Hex.encode "");
  check Alcotest.string "colon" "de:ad:be:ef" (Hex.encode_colon "\xde\xad\xbe\xef")

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"));
  (try
     ignore (Hex.decode "zz");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      Hex.decode (Hex.encode s) = s)

(* --- prng ------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let parent = Prng.create 7 in
  let c1 = Prng.split parent "alpha" in
  let c2 = Prng.split parent "beta" in
  (* different labels give different streams *)
  Alcotest.(check bool) "distinct" true (Prng.next_int64 c1 <> Prng.next_int64 c2);
  (* splitting does not advance the parent *)
  let p1 = Prng.create 7 in
  ignore (Prng.split p1 "alpha");
  check Alcotest.int64 "parent unperturbed" (Prng.next_int64 (Prng.create 7))
    (Prng.next_int64 p1)

let test_prng_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in rng 5 9 in
    Alcotest.(check bool) "in closed range" true (v >= 5 && v <= 9)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_prng_uniformish () =
  let rng = Prng.create 11 in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Prng.int rng 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "within 10% of uniform" true
        (abs (c - (n / 10)) < n / 10))
    counts

let test_prng_bernoulli () =
  let rng = Prng.create 19 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  Alcotest.(check bool) "~30%" true (abs (!hits - 3000) < 300)

let test_prng_choose_weighted () =
  let rng = Prng.create 23 in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 10_000 do
    match Prng.choose_weighted rng [| ("a", 9.0); ("b", 1.0) |] with
    | "a" -> incr a
    | _ -> incr b
  done;
  Alcotest.(check bool) "9:1 split" true (!a > 8 * !b)

let test_prng_sample_distinct () =
  let rng = Prng.create 31 in
  let a = Array.init 20 Fun.id in
  let s = Prng.sample rng a 10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.to_list sorted |> List.sort_uniq compare |> List.length in
  check Alcotest.int "all distinct" 10 distinct

let test_prng_zipf () =
  let rng = Prng.create 37 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let i = Prng.zipf rng 10 1.0 in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(5));
  Alcotest.(check bool) "monotone-ish head" true (counts.(0) > counts.(1))

let prop_geometric_nonneg =
  QCheck.Test.make ~name:"geometric non-negative" ~count:200
    QCheck.(pair small_int (float_range 0.01 1.0))
    (fun (seed, p) ->
      let rng = Prng.create seed in
      Prng.geometric rng p >= 0)

(* --- stats ------------------------------------------------------------ *)

let test_stats_basics () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check (Alcotest.float 1e-9) "median even" 2.5 (Stats.median [| 4.0; 1.0; 3.0; 2.0 |]);
  check (Alcotest.float 1e-9) "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check (Alcotest.float 1e-9) "variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Stats.mean [||]);
  check (Alcotest.float 1e-9) "fraction" 0.5
    (Stats.fraction (fun x -> x > 2) [| 1; 2; 3; 4 |])

let test_stats_percentile () =
  let a = Array.init 101 float_of_int in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile a 50.0);
  check (Alcotest.float 1e-9) "p0" 0.0 (Stats.percentile a 0.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile a 100.0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 50.0))

let test_ecdf () =
  let e = Stats.Ecdf.of_values [| 0.0; 0.0; 1.0; 5.0 |] in
  check (Alcotest.float 1e-9) "P(X<=0)" 0.5 (Stats.Ecdf.eval e 0.0);
  check (Alcotest.float 1e-9) "P(X<=1)" 0.75 (Stats.Ecdf.eval e 1.0);
  check (Alcotest.float 1e-9) "P(X<=10)" 1.0 (Stats.Ecdf.eval e 10.0);
  check (Alcotest.float 1e-9) "P(X<=-1)" 0.0 (Stats.Ecdf.eval e (-1.0));
  check (Alcotest.float 1e-9) "zero offset" 0.5 (Stats.Ecdf.value_at_zero e);
  check Alcotest.int "count" 4 (Stats.Ecdf.count e);
  check Alcotest.int "steps" 3 (Array.length (Stats.Ecdf.support e))

let prop_ecdf_monotone =
  QCheck.Test.make ~name:"ecdf monotone" ~count:100
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun values ->
      let e = Stats.Ecdf.of_values values in
      let steps = Stats.Ecdf.support e in
      let ok = ref true in
      Array.iteri
        (fun i (x, p) ->
          if i > 0 then begin
            let x', p' = steps.(i - 1) in
            if x' >= x || p' >= p then ok := false
          end)
        steps;
      !ok && snd steps.(Array.length steps - 1) = 1.0)

(* --- text table -------------------------------------------------------- *)

let test_table_render () =
  let s =
    Text_table.render ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "has rule" true (String.length s > 0 && s.[0] = '+');
  (* all lines same width *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines |> List.sort_uniq compare in
  check Alcotest.int "uniform width" 1 (List.length widths)

let test_table_mismatch () =
  try
    ignore (Text_table.render ~header:[ "a"; "b" ] [ [ "1" ] ]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_fmt_helpers () =
  check Alcotest.string "fmt_int" "744,069" (Text_table.fmt_int 744069);
  check Alcotest.string "fmt_int small" "42" (Text_table.fmt_int 42);
  check Alcotest.string "fmt_int negative" "-1,234" (Text_table.fmt_int (-1234));
  check Alcotest.string "fmt_pct" "39.0%" (Text_table.fmt_pct 0.39);
  check Alcotest.string "fmt_float" "3.14" (Text_table.fmt_float 3.14159)

(* --- csv ---------------------------------------------------------------- *)

let test_csv_escape () =
  check Alcotest.string "plain" "abc" (Csv.escape "abc");
  check Alcotest.string "comma" "\"a,b\"" (Csv.escape "a,b");
  check Alcotest.string "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  check Alcotest.string "row" "a,\"b,c\",d" (Csv.row [ "a"; "b,c"; "d" ])

let test_csv_render () =
  let doc = Csv.render ~header:[ "x"; "y" ] [ [ "1"; "2" ] ] in
  check Alcotest.string "doc" "x,y\n1,2\n" doc

(* --- timestamp ----------------------------------------------------------- *)

let test_timestamp_civil_roundtrip () =
  let t = Timestamp.of_date ~hour:13 ~minute:45 ~second:12 2014 4 1 in
  check
    (Alcotest.testable
       (fun fmt (a, b, c, d, e, f) -> Format.fprintf fmt "%d-%d-%d %d:%d:%d" a b c d e f)
       ( = ))
    "civil" (2014, 4, 1, 13, 45, 12) (Timestamp.to_civil t)

let test_timestamp_epoch () =
  check Alcotest.int "unix epoch" 0 (Timestamp.of_date 1970 1 1);
  check Alcotest.int "one day" 86400 (Timestamp.of_date 1970 1 2)

let test_timestamp_leap () =
  let t = Timestamp.of_date 2012 2 29 in
  let y, m, d, _, _, _ = Timestamp.to_civil (Timestamp.add_years t 1) in
  check Alcotest.int "clamped year" 2013 y;
  check Alcotest.int "clamped month" 2 m;
  check Alcotest.int "clamped day" 28 d

let test_timestamp_asn1 () =
  let t = Timestamp.of_date ~hour:23 ~minute:59 ~second:59 2013 10 24 in
  check Alcotest.string "utctime" "131024235959Z" (Timestamp.to_asn1_utctime t);
  check Alcotest.string "generalized" "20131024235959Z" (Timestamp.to_asn1_generalized t);
  check (Alcotest.option Alcotest.int) "utc parse" (Some t)
    (Timestamp.of_asn1_utctime "131024235959Z");
  check (Alcotest.option Alcotest.int) "gen parse" (Some t)
    (Timestamp.of_asn1_generalized "20131024235959Z");
  check (Alcotest.option Alcotest.int) "bad" None (Timestamp.of_asn1_utctime "xx");
  (* pre-2000 pivot *)
  let t99 = Timestamp.of_date 1999 1 1 in
  check (Alcotest.option Alcotest.int) "pivot 99" (Some t99)
    (Timestamp.of_asn1_utctime "990101000000Z")

let test_timestamp_validation () =
  Alcotest.check_raises "bad month" (Invalid_argument "Timestamp.of_date: invalid month")
    (fun () -> ignore (Timestamp.of_date 2014 13 1));
  Alcotest.check_raises "bad day" (Invalid_argument "Timestamp.of_date: invalid day")
    (fun () -> ignore (Timestamp.of_date 2014 2 30))

let prop_timestamp_roundtrip =
  QCheck.Test.make ~name:"timestamp civil roundtrip" ~count:300
    QCheck.(int_range (-2_000_000_000) 2_000_000_000)
    (fun t ->
      let y, m, d, hh, mm, ss = Timestamp.to_civil t in
      Timestamp.of_date ~hour:hh ~minute:mm ~second:ss y m d = t)

let suite =
  [
    ("hex roundtrip", `Quick, test_hex_roundtrip);
    ("hex errors", `Quick, test_hex_errors);
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng split independence", `Quick, test_prng_split_independent);
    ("prng bounds", `Quick, test_prng_bounds);
    ("prng uniformity", `Quick, test_prng_uniformish);
    ("prng bernoulli", `Quick, test_prng_bernoulli);
    ("prng weighted choice", `Quick, test_prng_choose_weighted);
    ("prng sample distinct", `Quick, test_prng_sample_distinct);
    ("prng zipf", `Quick, test_prng_zipf);
    ("stats basics", `Quick, test_stats_basics);
    ("stats percentile", `Quick, test_stats_percentile);
    ("ecdf", `Quick, test_ecdf);
    ("table render", `Quick, test_table_render);
    ("table mismatch", `Quick, test_table_mismatch);
    ("format helpers", `Quick, test_fmt_helpers);
    ("csv escape", `Quick, test_csv_escape);
    ("csv render", `Quick, test_csv_render);
    ("timestamp civil roundtrip", `Quick, test_timestamp_civil_roundtrip);
    ("timestamp epoch", `Quick, test_timestamp_epoch);
    ("timestamp leap clamp", `Quick, test_timestamp_leap);
    ("timestamp asn1 forms", `Quick, test_timestamp_asn1);
    ("timestamp validation", `Quick, test_timestamp_validation);
    qtest prop_hex_roundtrip;
    qtest prop_geometric_nonneg;
    qtest prop_ecdf_monotone;
    qtest prop_timestamp_roundtrip;
  ]
