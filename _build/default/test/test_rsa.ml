(* Tests for the RSA substrate. *)

module B = Tangled_numeric.Bigint
module Rsa = Tangled_crypto.Rsa
module Dk = Tangled_hash.Digest_kind
module Prng = Tangled_util.Prng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* A shared keypair keeps the suite fast; individual tests that need a
   fresh key make their own. *)
let key512 = lazy (Rsa.generate ~mr_rounds:8 (Prng.create 1001) ~bits:512)
let key384 = lazy (Rsa.generate ~mr_rounds:8 (Prng.create 1002) ~bits:384)

let test_keygen_structure () =
  let key = Lazy.force key512 in
  check Alcotest.int "modulus bits" 512 (B.bit_length key.Rsa.pub.Rsa.n);
  check Alcotest.int "key size bytes" 64 (Rsa.key_size_bytes key.Rsa.pub);
  (* n = p * q *)
  Alcotest.(check bool) "n = p*q" true
    (B.equal key.Rsa.pub.Rsa.n (B.mul key.Rsa.p key.Rsa.q));
  (* e*d = 1 mod phi *)
  let phi = B.mul (B.sub key.Rsa.p B.one) (B.sub key.Rsa.q B.one) in
  Alcotest.(check bool) "ed = 1 mod phi" true
    (B.equal B.one (B.erem (B.mul key.Rsa.pub.Rsa.e key.Rsa.d) phi));
  (* CRT components consistent *)
  Alcotest.(check bool) "dp" true
    (B.equal key.Rsa.dp (B.erem key.Rsa.d (B.sub key.Rsa.p B.one)));
  Alcotest.(check bool) "qinv" true
    (B.equal B.one (B.erem (B.mul key.Rsa.qinv key.Rsa.q) key.Rsa.p))

let test_keygen_too_small () =
  Alcotest.check_raises "below 64" (Invalid_argument "Rsa.generate: modulus below 64 bits")
    (fun () -> ignore (Rsa.generate (Prng.create 1) ~bits:32))

let test_sign_verify () =
  let key = Lazy.force key512 in
  let msg = "the tangled mass of android root stores" in
  List.iter
    (fun digest ->
      let signature = Rsa.sign key ~digest msg in
      check Alcotest.int "signature length" 64 (String.length signature);
      Alcotest.(check bool) "verifies" true
        (Rsa.verify key.Rsa.pub ~digest ~msg ~signature);
      Alcotest.(check bool) "rejects other message" false
        (Rsa.verify key.Rsa.pub ~digest ~msg:(msg ^ "!") ~signature);
      Alcotest.(check bool) "rejects other digest" false
        (Rsa.verify key.Rsa.pub
           ~digest:(if digest = Dk.SHA256 then Dk.SHA1 else Dk.SHA256)
           ~msg ~signature))
    [ Dk.MD5; Dk.SHA1; Dk.SHA256 ]

let test_verify_malformed () =
  let key = Lazy.force key512 in
  let msg = "m" in
  let signature = Rsa.sign key ~digest:Dk.SHA256 msg in
  (* wrong length *)
  Alcotest.(check bool) "short sig" false
    (Rsa.verify key.Rsa.pub ~digest:Dk.SHA256 ~msg ~signature:(String.sub signature 0 10));
  (* bit-flipped signature *)
  let tampered = Bytes.of_string signature in
  Bytes.set tampered 10 (Char.chr (Char.code (Bytes.get tampered 10) lxor 0x40));
  Alcotest.(check bool) "tampered sig" false
    (Rsa.verify key.Rsa.pub ~digest:Dk.SHA256 ~msg ~signature:(Bytes.to_string tampered));
  (* signature value >= n *)
  let huge = String.make 64 '\xff' in
  Alcotest.(check bool) "oversized value" false
    (Rsa.verify key.Rsa.pub ~digest:Dk.SHA256 ~msg ~signature:huge)

let test_cross_key_rejection () =
  let k1 = Lazy.force key512 in
  let k2 = Rsa.generate ~mr_rounds:8 (Prng.create 1003) ~bits:512 in
  let msg = "cross" in
  let signature = Rsa.sign k1 ~digest:Dk.SHA256 msg in
  Alcotest.(check bool) "other key rejects" false
    (Rsa.verify k2.Rsa.pub ~digest:Dk.SHA256 ~msg ~signature)

let test_384_sha1 () =
  (* the simulation's default configuration *)
  let key = Lazy.force key384 in
  let msg = "small key, era digest" in
  let signature = Rsa.sign key ~digest:Dk.SHA1 msg in
  Alcotest.(check bool) "verifies" true (Rsa.verify key.Rsa.pub ~digest:Dk.SHA1 ~msg ~signature)

let test_384_sha256_too_small () =
  let key = Lazy.force key384 in
  try
    ignore (Rsa.sign key ~digest:Dk.SHA256 "x");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_raw_roundtrip () =
  let key = Lazy.force key512 in
  let msg = "\x01secret payload" in
  let ct = Rsa.encrypt_raw key.Rsa.pub msg in
  check Alcotest.string "roundtrip" msg (Rsa.decrypt_raw key ct)

let test_modulus_bytes () =
  let key = Lazy.force key512 in
  let m = Rsa.modulus_bytes key.Rsa.pub in
  check Alcotest.int "length" 64 (String.length m);
  Alcotest.(check bool) "matches n" true (B.equal key.Rsa.pub.Rsa.n (B.of_bytes_be m))

let test_deterministic_keygen () =
  let k1 = Rsa.generate ~mr_rounds:8 (Prng.create 555) ~bits:384 in
  let k2 = Rsa.generate ~mr_rounds:8 (Prng.create 555) ~bits:384 in
  Alcotest.(check bool) "same seed, same key" true (B.equal k1.Rsa.pub.Rsa.n k2.Rsa.pub.Rsa.n)

let prop_sign_verify =
  QCheck.Test.make ~name:"sign/verify roundtrip" ~count:30 QCheck.string (fun msg ->
      let key = Lazy.force key512 in
      let signature = Rsa.sign key ~digest:Dk.SHA256 msg in
      Rsa.verify key.Rsa.pub ~digest:Dk.SHA256 ~msg ~signature)

let prop_signature_unique_per_message =
  QCheck.Test.make ~name:"distinct messages, distinct signatures" ~count:30
    (QCheck.pair QCheck.string QCheck.string)
    (fun (m1, m2) ->
      QCheck.assume (m1 <> m2);
      let key = Lazy.force key512 in
      Rsa.sign key ~digest:Dk.SHA256 m1 <> Rsa.sign key ~digest:Dk.SHA256 m2)

let suite =
  [
    ("keygen structure", `Quick, test_keygen_structure);
    ("keygen minimum size", `Quick, test_keygen_too_small);
    ("sign and verify (all digests)", `Quick, test_sign_verify);
    ("verify rejects malformed input", `Quick, test_verify_malformed);
    ("cross-key rejection", `Quick, test_cross_key_rejection);
    ("384-bit with SHA-1", `Quick, test_384_sha1);
    ("384-bit refuses SHA-256", `Quick, test_384_sha256_too_small);
    ("raw encrypt/decrypt", `Quick, test_raw_roundtrip);
    ("modulus bytes", `Quick, test_modulus_bytes);
    ("deterministic keygen", `Quick, test_deterministic_keygen);
    qtest prop_sign_verify;
    qtest prop_signature_unique_per_message;
  ]
