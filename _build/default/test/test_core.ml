(* End-to-end tests: every paper artefact computed over the shared
   quick world, checked against the paper's published shape. *)

module PD = Tangled_pki.Paper_data
module Pipeline = Tangled_core.Pipeline
module Report = Tangled_core.Report
module T1 = Tangled_core.Table1
module T2 = Tangled_core.Table2
module T3 = Tangled_core.Table3
module T4 = Tangled_core.Table4
module T5 = Tangled_core.Table5
module T6 = Tangled_core.Table6
module F1 = Tangled_core.Figure1
module F2 = Tangled_core.Figure2
module F3 = Tangled_core.Figure3

let check = Alcotest.check

let world = lazy (Lazy.force Pipeline.quick)

let test_table1_exact () =
  List.iter
    (fun (r : T1.row) ->
      check Alcotest.int ("table1: " ^ r.T1.store) r.T1.paper r.T1.certificates)
    (T1.compute (Lazy.force world))

let test_table2_shape () =
  let t = T2.compute (Lazy.force world) in
  check Alcotest.int "five devices" 5 (List.length t.T2.top_devices);
  check Alcotest.int "five manufacturers" 5 (List.length t.T2.top_manufacturers);
  (match t.T2.top_devices with
  | (top, _) :: _ ->
      Alcotest.(check bool) "Galaxy SIV leads" true
        (top = "SAMSUNG Galaxy SIV")
  | [] -> Alcotest.fail "no devices");
  match t.T2.top_manufacturers with
  | (m, _) :: _ -> check Alcotest.string "Samsung leads" "SAMSUNG" m
  | [] -> Alcotest.fail "no manufacturers"

let test_table3_shape () =
  let t = T3.compute (Lazy.force world) in
  check Alcotest.int "six stores" 6 (List.length t.T3.rows);
  List.iter
    (fun (r : T3.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s fraction %.3f near paper %.3f" r.T3.store r.T3.fraction
           r.T3.paper_fraction)
        true
        (abs_float (r.T3.fraction -. r.T3.paper_fraction) < 0.05))
    t.T3.rows;
  let get name = (List.find (fun (r : T3.row) -> r.T3.store = name) t.T3.rows).T3.validated in
  Alcotest.(check bool) "iOS most" true (get "iOS 7" >= get "AOSP 4.4");
  Alcotest.(check bool) "4.4 >= 4.1" true (get "AOSP 4.4" >= get "AOSP 4.1")

let test_table4_shape () =
  let rows = T4.compute (Lazy.force world) in
  check Alcotest.int "eight categories" 8 (List.length rows);
  List.iter
    (fun (r : T4.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s zero %.2f vs paper %.2f" r.T4.category r.T4.zero_fraction
           r.T4.paper_zero_fraction)
        true
        (abs_float (r.T4.zero_fraction -. r.T4.paper_zero_fraction) < 0.10);
      Alcotest.(check bool)
        (Printf.sprintf "%s total %d vs paper %d" r.T4.category r.T4.total r.T4.paper_total)
        true
        (abs (r.T4.total - r.T4.paper_total) <= 20))
    rows

let test_table5_shape () =
  let t = T5.compute (Lazy.force world) in
  check Alcotest.int "five CAs" 5 (List.length t.T5.rows);
  (match t.T5.rows with
  | top :: rest ->
      check Alcotest.string "crazy house leads" "CRAZY HOUSE" top.T5.ca;
      Alcotest.(check bool) "many devices" true (top.T5.devices >= 5);
      List.iter
        (fun (r : T5.row) ->
          Alcotest.(check bool) (r.T5.ca ^ " on one device") true (r.T5.devices <= 1))
        rest
  | [] -> Alcotest.fail "no rows");
  Alcotest.(check bool) "rooted near 24%" true
    (abs_float (t.T5.rooted_session_fraction -. PD.fraction_sessions_rooted) < 0.06)

let test_table6_partition () =
  let t = T6.compute (Lazy.force world) in
  Alcotest.(check bool) "probes ran" true (t.T6.rows <> []);
  List.iter
    (fun (r : T6.row) ->
      let expected = List.mem (r.T6.host, r.T6.port) PD.intercepted_domains in
      Alcotest.(check bool)
        (Printf.sprintf "%s:%d interception" r.T6.host r.T6.port)
        expected r.T6.intercepted;
      (* the §7 detection signal: intercepted <=> untrusted *)
      Alcotest.(check bool)
        (Printf.sprintf "%s:%d trust inverse" r.T6.host r.T6.port)
        (not expected) r.T6.trusted_by_device)
    t.T6.rows

let test_figure1_shape () =
  let f = F1.compute (Lazy.force world) in
  Alcotest.(check bool) "extended near 39%" true
    (abs_float (f.F1.extended_fraction -. PD.fraction_sessions_extended) < 0.10);
  check Alcotest.int "five missing handsets" PD.handsets_missing_certs f.F1.handsets_missing;
  (* heavy extender rows show a >40-addition tail *)
  let heavy_hit =
    List.exists (fun (_, _, frac) -> frac > 0.10) f.F1.heavy_fraction
  in
  Alcotest.(check bool) "heavy tail present" true heavy_hit;
  (* points aggregate all sessions *)
  let total = List.fold_left (fun acc (p : F1.point) -> acc + p.F1.sessions) 0 f.F1.points in
  check Alcotest.int "points cover sessions" total
    (Tangled_netalyzr.Netalyzr.total_sessions (Lazy.force world).Pipeline.dataset)

let test_figure2_shape () =
  let f = F2.compute (Lazy.force world) in
  Alcotest.(check bool) "cells exist" true (f.F2.cells <> []);
  List.iter
    (fun (c : F2.cell) ->
      Alcotest.(check bool)
        (Printf.sprintf "frequency sane: %s/%s" c.F2.row c.F2.cert_id)
        true
        (c.F2.frequency > 0.0 && c.F2.frequency <= 1.0))
    f.F2.cells;
  (* all four legend classes appear with positive share *)
  check Alcotest.int "four classes" 4 (List.length f.F2.class_mix);
  List.iter
    (fun (cls, share) ->
      Alcotest.(check bool)
        (PD.notary_class_to_string cls ^ " appears")
        true (share > 0.0))
    f.F2.class_mix;
  (* the unrecorded class is the biggest, as in the paper (40%) *)
  let share cls = List.assoc cls f.F2.class_mix in
  Alcotest.(check bool) "unrecorded largest" true
    (share PD.Unrecorded >= share PD.Mozilla_and_ios)

let test_figure3_shape () =
  let series = F3.compute (Lazy.force world) in
  check Alcotest.int "eight series" 8 (List.length series);
  let offset name =
    (List.find (fun (s : F3.series) -> s.F3.category = name) series).F3.zero_offset
  in
  (* the paper's qualitative ordering of y-intercepts *)
  Alcotest.(check bool) "non-AOSP/non-Mozilla worst" true
    (offset "Non AOSP and Non Mozilla root certs" > offset "iOS 7 root store certs");
  Alcotest.(check bool) "shared best" true
    (offset "AOSP 4.4 and Mozilla root certs" < offset "AOSP 4.4 certs");
  Alcotest.(check bool) "ios above mozilla" true
    (offset "iOS 7 root store certs" > offset "Mozilla root store certs")

let test_report_renders () =
  let w = Lazy.force world in
  List.iter
    (fun name ->
      let s = Report.render_one w name in
      Alcotest.(check bool) (name ^ " non-empty") true (String.length s > 50))
    Report.artefact_names;
  Alcotest.check_raises "unknown artefact"
    (Invalid_argument "Report.render_one: unknown artefact nope") (fun () ->
      ignore (Report.render_one w "nope"))

let test_csv_outputs () =
  let w = Lazy.force world in
  List.iter
    (fun name ->
      let header, rows = Report.csv_one w name in
      Alcotest.(check bool) (name ^ " has header") true (header <> []);
      Alcotest.(check bool) (name ^ " has rows") true (rows <> []);
      List.iter
        (fun row ->
          check Alcotest.int (name ^ " row width") (List.length header) (List.length row))
        rows)
    Report.artefact_names

let test_pipeline_determinism () =
  (* identical configs give identical Table 3 counts *)
  let cfg =
    { Pipeline.quick_config with Pipeline.sessions = 300; notary_leaves = 500 }
  in
  let u = (Lazy.force world).Pipeline.universe in
  let w1 = Pipeline.run ~config:cfg ~universe:u () in
  let w2 = Pipeline.run ~config:cfg ~universe:u () in
  let counts w = List.map (fun (r : T3.row) -> r.T3.validated) (T3.compute w).T3.rows in
  check (Alcotest.list Alcotest.int) "table3 deterministic" (counts w1) (counts w2)

let suite =
  [
    ("Table 1 exact", `Quick, test_table1_exact);
    ("Table 2 shape", `Quick, test_table2_shape);
    ("Table 3 shape", `Quick, test_table3_shape);
    ("Table 4 shape", `Quick, test_table4_shape);
    ("Table 5 shape", `Quick, test_table5_shape);
    ("Table 6 partition", `Quick, test_table6_partition);
    ("Figure 1 shape", `Quick, test_figure1_shape);
    ("Figure 2 shape", `Quick, test_figure2_shape);
    ("Figure 3 shape", `Quick, test_figure3_shape);
    ("all artefacts render", `Quick, test_report_renders);
    ("all artefacts dump CSV", `Quick, test_csv_outputs);
    ("pipeline determinism", `Slow, test_pipeline_determinism);
  ]
