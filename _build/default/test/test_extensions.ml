(* Tests for the extension analyses: store minimization (§5.3), trust
   scoping (§8), pinning (§7 counterfactual). *)

module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module Scope = Tangled_store.Trust_scope
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module Pinning = Tangled_tls.Pinning
module Endpoint = Tangled_tls.Endpoint
module Pipeline = Tangled_core.Pipeline
module Minimization = Tangled_core.Minimization
module Scoping = Tangled_core.Scoping
module Pinning_study = Tangled_core.Pinning_study
module Notary = Tangled_notary.Notary

let check = Alcotest.check

let world = lazy (Lazy.force Pipeline.quick)

(* --- minimization ------------------------------------------------------- *)

let test_minimization_preserves_coverage () =
  let rows = Minimization.compute (Lazy.force world) in
  check Alcotest.int "six stores" 6 (List.length rows);
  List.iter
    (fun (r : Minimization.row) ->
      check (Alcotest.float 1e-9)
        (r.Minimization.store ^ " coverage preserved")
        r.Minimization.coverage_before r.Minimization.coverage_after;
      Alcotest.(check bool) "some removable" true (r.Minimization.removable > 0);
      Alcotest.(check bool) "not everything removable" true
        (r.Minimization.removable < r.Minimization.total))
    rows

let test_minimization_matches_table4 () =
  (* the removable share of each store is exactly its Table 4
     zero-validation share *)
  let w = Lazy.force world in
  let rows = Minimization.compute w in
  let aosp44 =
    List.find (fun (r : Minimization.row) -> r.Minimization.store = "AOSP 4.4") rows
  in
  let counts =
    Notary.counts_for_certs w.Pipeline.notary
      (BP.store_of_category w.Pipeline.universe "AOSP 4.4 certs")
  in
  let zeros = Array.to_list counts |> List.filter (fun c -> c = 0.0) |> List.length in
  check Alcotest.int "removable = zero validators" zeros aosp44.Minimization.removable

let test_minimized_store_disables_not_removes () =
  let w = Lazy.force world in
  let store = w.Pipeline.universe.BP.aosp PD.V4_4 in
  let minimized = Minimization.minimized_store w store in
  (* entries remain present (disabled), so the user can re-enable *)
  check Alcotest.int "entries kept" (List.length (Rs.entries store))
    (List.length (Rs.entries minimized));
  Alcotest.(check bool) "fewer enabled" true (Rs.cardinal minimized < Rs.cardinal store)

(* --- trust scoping -------------------------------------------------------- *)

let test_scope_inference_specials () =
  let u = (Lazy.force world).Pipeline.universe in
  let infer id = Scope.infer (Hashtbl.find u.BP.extra_by_id id).BP.authority.Authority.certificate in
  Alcotest.(check bool) "FOTA -> device services" true
    (infer "bae1df7c" = [ Scope.Device_services ]);
  Alcotest.(check bool) "SUPL -> device services" true
    (infer "caf7a0d5" = [ Scope.Device_services ]);
  Alcotest.(check bool) "UTI -> device services" true
    (infer "b94b8f0a" = [ Scope.Device_services ]);
  Alcotest.(check bool) "Vodafone operator domain -> device services" true
    (infer "c148b339" = [ Scope.Device_services ]);
  Alcotest.(check bool) "timestamping -> code signing" true
    (infer "d62b5878" = [ Scope.Code_signing ]);
  Alcotest.(check bool) "freemail -> email" true (infer "d469d7d4" = [ Scope.Email ])

let test_scope_inference_default () =
  (* a plain CA with no EKU and no marker keeps Android's any-use trust *)
  let rng = Tangled_util.Prng.create 900 in
  let ca = Authority.self_signed ~bits:384 ~digest:Tangled_hash.Digest_kind.SHA1 rng
      (Tangled_x509.Dn.make "Plain Trust Anchor") in
  Alcotest.(check bool) "all scopes" true
    (Scope.infer ca.Authority.certificate = Scope.all_scopes)

let test_scope_inference_eku () =
  let rng = Tangled_util.Prng.create 901 in
  let root = Authority.self_signed ~bits:512 rng (Tangled_x509.Dn.make "EKU Root") in
  let signer =
    Authority.issue_leaf ~bits:512 rng ~parent:root ~ekus:[ C.Code_signing ]
      ~dns_names:[] (Tangled_x509.Dn.make "signer")
  in
  Alcotest.(check bool) "EKU wins over names" true
    (Scope.infer signer = [ Scope.Code_signing ])

let test_restrict () =
  let u = (Lazy.force world).Pipeline.universe in
  let fota = (Hashtbl.find u.BP.extra_by_id "bae1df7c").BP.authority.Authority.certificate in
  let store =
    Rs.merge (u.BP.aosp PD.V4_4) (Rs.of_certs "extra" (Rs.Manufacturer "MOTOROLA") [ fota ])
  in
  let scoped = Scope.restrict store Scope.Tls_server Scope.infer in
  Alcotest.(check bool) "FOTA stripped from TLS view" false (Rs.mem scoped fota);
  Alcotest.(check bool) "FOTA still in full store" true (Rs.mem store fota);
  (* the device-services view keeps it and drops the generic anchors *)
  let dev_view = Scope.restrict store Scope.Device_services Scope.infer in
  Alcotest.(check bool) "FOTA in device-services view" true (Rs.mem dev_view fota)

let test_scoping_analysis () =
  let t = Scoping.compute (Lazy.force world) in
  check Alcotest.int "six stores" 6 (List.length t.Scoping.rows);
  List.iter
    (fun (r : Scoping.row) ->
      Alcotest.(check bool) (r.Scoping.store ^ " shrinks or holds") true
        (r.Scoping.anchors_scoped <= r.Scoping.anchors_android);
      Alcotest.(check bool) "coverage within 2% of unscoped" true
        (r.Scoping.coverage_android -. r.Scoping.coverage_scoped < 0.02))
    t.Scoping.rows;
  Alcotest.(check bool) "extras stripped share positive" true
    (t.Scoping.device_extra_reduction > 0.0)

(* --- pinning ----------------------------------------------------------------- *)

let test_pin_chain () =
  let w = Lazy.force world in
  let world_eps = w.Pipeline.dataset.Tangled_netalyzr.Netalyzr.world in
  let e = Option.get (Endpoint.lookup world_eps ~host:"www.google.com" ~port:443) in
  let pins = Pinning.pin_chain e.Endpoint.chain in
  check Alcotest.int "pin per chain element" (List.length e.Endpoint.chain)
    (List.length pins);
  List.iter (fun p -> check Alcotest.int "sha256 pin" 32 (String.length p)) pins

let test_pinsets_cover_whitelist () =
  let w = Lazy.force world in
  let world_eps = w.Pipeline.dataset.Tangled_netalyzr.Netalyzr.world in
  let pinsets = Pinning.of_world world_eps in
  check Alcotest.int "three pinning apps" 3 (List.length pinsets);
  List.iter
    (fun (p : Pinning.pinset) ->
      Alcotest.(check bool) (p.Pinning.app ^ " has pins") true (p.Pinning.pins <> []))
    pinsets

let test_pinning_study_consistent () =
  let t = Pinning_study.compute (Lazy.force world) in
  Alcotest.(check bool) "whitelist = pinning protection" true t.Pinning_study.consistent;
  (* every probe target is covered *)
  check Alcotest.int "21 endpoints"
    (List.length (List.sort_uniq compare (PD.intercepted_domains @ PD.whitelisted_domains)))
    (List.length t.Pinning_study.rows);
  (* intercepted (non-whitelisted) domains succeed silently *)
  List.iter
    (fun (r : Pinning_study.row) ->
      if not r.Pinning_study.whitelisted then
        Alcotest.(check bool)
          (r.Pinning_study.host ^ " unprotected")
          false r.Pinning_study.would_break)
    t.Pinning_study.rows

let test_extension_report_rendering () =
  let w = Lazy.force world in
  List.iter
    (fun name ->
      let s = Tangled_core.Report.render_one w name in
      Alcotest.(check bool) (name ^ " renders") true (String.length s > 100);
      let header, rows = Tangled_core.Report.csv_one w name in
      Alcotest.(check bool) (name ^ " csv") true (header <> [] && rows <> []))
    Tangled_core.Report.extension_names

let suite =
  [
    ("minimization preserves coverage", `Quick, test_minimization_preserves_coverage);
    ("minimization matches Table 4", `Quick, test_minimization_matches_table4);
    ("minimization disables, not removes", `Quick, test_minimized_store_disables_not_removes);
    ("scope inference: special-purpose roots", `Quick, test_scope_inference_specials);
    ("scope inference: default is any-use", `Quick, test_scope_inference_default);
    ("scope inference: EKU wins", `Quick, test_scope_inference_eku);
    ("scope restriction", `Quick, test_restrict);
    ("scoping analysis", `Quick, test_scoping_analysis);
    ("pin chains", `Quick, test_pin_chain);
    ("pinsets cover whitelist", `Quick, test_pinsets_cover_whitelist);
    ("pinning study consistency", `Quick, test_pinning_study_consistent);
    ("extension artefacts render", `Quick, test_extension_report_rendering);
  ]
