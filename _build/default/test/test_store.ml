(* Tests for the Android root-store model: permissions, journal,
   diff/merge, equivalence-keyed membership. *)

module Rs = Tangled_store.Root_store
module Dn = Tangled_x509.Dn
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module Prng = Tangled_util.Prng

let check = Alcotest.check

let rng = Prng.create 500

let mk_ca name =
  (Authority.self_signed ~bits:384 ~digest:Tangled_hash.Digest_kind.SHA1 rng
     (Dn.make name))
    .Authority.certificate

let ca1 = lazy (mk_ca "Store CA One")
let ca2 = lazy (mk_ca "Store CA Two")
let ca3 = lazy (mk_ca "Store CA Three")

let base () =
  Rs.of_certs "base" Rs.Aosp [ Lazy.force ca1; Lazy.force ca2 ]

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Rs.error_to_string e)

let expect_denied = function
  | Error (Rs.Permission_denied _) -> ()
  | Ok _ -> Alcotest.fail "expected permission denial"
  | Error e -> Alcotest.fail ("wrong error: " ^ Rs.error_to_string e)

let test_of_certs () =
  let s = base () in
  check Alcotest.int "cardinal" 2 (Rs.cardinal s);
  check Alcotest.string "name" "base" (Rs.name s);
  Alcotest.(check bool) "mem" true (Rs.mem s (Lazy.force ca1));
  Alcotest.(check bool) "not mem" false (Rs.mem s (Lazy.force ca3));
  (* duplicates collapse *)
  let dup = Rs.of_certs "dup" Rs.Aosp [ Lazy.force ca1; Lazy.force ca1 ] in
  check Alcotest.int "dedup" 1 (Rs.cardinal dup)

let test_permission_matrix () =
  let s = base () in
  let c3 = Lazy.force ca3 in
  (* unprivileged apps: nothing *)
  expect_denied (Rs.add s (Rs.Unprivileged_app "x") Rs.User c3);
  expect_denied (Rs.remove s (Rs.Unprivileged_app "x") (Lazy.force ca1));
  expect_denied (Rs.disable s (Rs.Unprivileged_app "x") (Lazy.force ca1));
  (* settings UI: add and disable but not remove *)
  let s' = ok (Rs.add s Rs.Settings_ui Rs.User c3) in
  check Alcotest.int "added" 3 (Rs.cardinal s');
  expect_denied (Rs.remove s' Rs.Settings_ui c3);
  let s'' = ok (Rs.disable s' Rs.Settings_ui c3) in
  check Alcotest.int "disabled" 2 (Rs.cardinal s'');
  let s3 = ok (Rs.enable s'' Rs.Settings_ui c3) in
  check Alcotest.int "re-enabled" 3 (Rs.cardinal s3);
  (* privileged app: everything, including removing AOSP roots *)
  let s4 = ok (Rs.remove s3 (Rs.Privileged_app "root") (Lazy.force ca1)) in
  check Alcotest.int "root removed" 2 (Rs.cardinal s4)

let test_settings_ui_forces_user_provenance () =
  let s = ok (Rs.add (base ()) Rs.Settings_ui (Rs.Operator "EVIL") (Lazy.force ca3)) in
  let counts = Rs.provenance_counts s in
  Alcotest.(check bool) "user provenance" true (List.mem_assoc Rs.User counts);
  Alcotest.(check bool) "no operator entry" false
    (List.mem_assoc (Rs.Operator "EVIL") counts)

let test_duplicate_add () =
  match Rs.add (base ()) (Rs.Privileged_app "p") Rs.User (Lazy.force ca1) with
  | Error (Rs.Duplicate _) -> ()
  | _ -> Alcotest.fail "expected Duplicate"

let test_missing_target () =
  match Rs.remove (base ()) (Rs.Privileged_app "p") (Lazy.force ca3) with
  | Error (Rs.Not_found_in_store _) -> ()
  | _ -> Alcotest.fail "expected Not_found_in_store"

let test_journal () =
  let s = base () in
  check Alcotest.int "empty journal" 0 (List.length (Rs.journal s));
  let s = ok (Rs.add s (Rs.Privileged_app "freedom") (Rs.App "freedom") (Lazy.force ca3)) in
  let s = ok (Rs.disable s Rs.Settings_ui (Lazy.force ca1)) in
  let events = Rs.journal s in
  check Alcotest.int "two events" 2 (List.length events);
  (match events with
  | [ e1; e2 ] ->
      Alcotest.(check bool) "order: add first" true (e1.Rs.action = `Add);
      Alcotest.(check bool) "then disable" true (e2.Rs.action = `Disable)
  | _ -> Alcotest.fail "journal shape");
  (* system-image loads are not journalled *)
  check Alcotest.int "of_certs silent" 0 (List.length (Rs.journal (base ())))

let test_diff () =
  let baseline = base () in
  let device = ok (Rs.add baseline (Rs.Privileged_app "p") Rs.User (Lazy.force ca3)) in
  let device = ok (Rs.remove device (Rs.Privileged_app "p") (Lazy.force ca2)) in
  let additions, missing = Rs.diff device baseline in
  check Alcotest.int "one addition" 1 (List.length additions);
  check Alcotest.int "one missing" 1 (List.length missing);
  (match additions with
  | [ c ] -> Alcotest.(check bool) "right addition" true (Dn.equal c.C.subject (Lazy.force ca3).C.subject)
  | _ -> Alcotest.fail "additions");
  (* disabled baseline entries count as missing from the device *)
  let device2 = ok (Rs.disable baseline Rs.Settings_ui (Lazy.force ca1)) in
  let _, missing2 = Rs.diff device2 baseline in
  check Alcotest.int "disabled is missing" 1 (List.length missing2)

let test_merge () =
  let a = Rs.of_certs "a" Rs.Aosp [ Lazy.force ca1 ] in
  let b = Rs.of_certs "b" (Rs.Manufacturer "HTC") [ Lazy.force ca1; Lazy.force ca3 ] in
  let m = Rs.merge a b in
  check Alcotest.int "merged size" 2 (Rs.cardinal m);
  (* a wins on conflicts: ca1 keeps Aosp provenance *)
  let counts = Rs.provenance_counts m in
  check (Alcotest.option Alcotest.int) "aosp kept" (Some 1) (List.assoc_opt Rs.Aosp counts);
  check (Alcotest.option Alcotest.int) "htc overlay" (Some 1)
    (List.assoc_opt (Rs.Manufacturer "HTC") counts)

let test_find_by_subject () =
  let s = base () in
  check Alcotest.int "found" 1
    (List.length (Rs.find_by_subject s (Lazy.force ca1).C.subject));
  check Alcotest.int "not found" 0
    (List.length (Rs.find_by_subject s (Dn.make "nope")));
  (* disabled entries are not returned *)
  let s' = ok (Rs.disable s Rs.Settings_ui (Lazy.force ca1)) in
  check Alcotest.int "disabled hidden" 0
    (List.length (Rs.find_by_subject s' (Lazy.force ca1).C.subject))

let test_insertion_order () =
  let s = base () in
  match Rs.certs s with
  | [ first; second ] ->
      Alcotest.(check bool) "order kept" true
        (Dn.equal first.C.subject (Lazy.force ca1).C.subject
        && Dn.equal second.C.subject (Lazy.force ca2).C.subject)
  | _ -> Alcotest.fail "expected two certs"

let count_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let count = ref 0 in
  for i = 0 to h - n do
    if String.sub hay i n = needle then incr count
  done;
  !count

let test_to_pem () =
  let pem = Rs.to_pem (base ()) in
  check Alcotest.int "two pem blocks" 2
    (count_substring pem "-----BEGIN CERTIFICATE-----");
  (* the dump parses back to the same certificates *)
  match Tangled_x509.Pem.decode_all pem with
  | Ok blocks -> check Alcotest.int "parseable" 2 (List.length blocks)
  | Error m -> Alcotest.fail m

let suite =
  [
    ("bulk load", `Quick, test_of_certs);
    ("permission matrix", `Quick, test_permission_matrix);
    ("settings UI provenance", `Quick, test_settings_ui_forces_user_provenance);
    ("duplicate add", `Quick, test_duplicate_add);
    ("missing target", `Quick, test_missing_target);
    ("journal", `Quick, test_journal);
    ("diff", `Quick, test_diff);
    ("merge", `Quick, test_merge);
    ("find by subject", `Quick, test_find_by_subject);
    ("insertion order", `Quick, test_insertion_order);
    ("pem dump", `Quick, test_to_pem);
  ]
