(* Tests for the paper-data tables and the universe blueprint.  These
   use the process-shared default universe (built once, ~10s). *)

module PD = Tangled_pki.Paper_data
module BP = Tangled_pki.Blueprint
module Rs = Tangled_store.Root_store
module C = Tangled_x509.Certificate
module Authority = Tangled_x509.Authority
module Ts = Tangled_util.Timestamp

let check = Alcotest.check

let universe = lazy (Lazy.force BP.default)

(* --- paper data consistency ------------------------------------------ *)

let test_store_size_constants () =
  check Alcotest.int "4.1" 139 (PD.aosp_store_size PD.V4_1);
  check Alcotest.int "4.4" 150 (PD.aosp_store_size PD.V4_4);
  check Alcotest.int "ios" 227 PD.ios7_store_size;
  check Alcotest.int "mozilla" 153 PD.mozilla_store_size

let test_version_deltas_sum () =
  (* the per-version deltas must reproduce Table 1's sizes *)
  let sizes = ref [] in
  let shared = ref 0 and only = ref 0 in
  List.iter
    (fun v ->
      let s, o = PD.aosp_version_delta v in
      shared := !shared + s;
      only := !only + o;
      sizes := (v, !shared + !only) :: !sizes)
    PD.android_versions;
  List.iter
    (fun (v, size) -> check Alcotest.int (PD.version_to_string v) (PD.aosp_store_size v) size)
    (List.rev !sizes);
  check Alcotest.int "shared total" PD.aosp44_mozilla_shared !shared;
  check Alcotest.int "only total" PD.aosp44_only !only

let test_mozilla_composition () =
  check Alcotest.int "mozilla composition" PD.mozilla_store_size
    (PD.aosp44_mozilla_shared + PD.extras_on_mozilla + PD.mozilla_exclusive)

let test_extras_class_quota () =
  let count cls =
    Array.to_list PD.extras
    |> List.filter (fun (x : PD.extra_cert) -> x.PD.xc_class = cls)
    |> List.length
  in
  check Alcotest.int "mozilla+ios extras" PD.extras_on_mozilla (count PD.Mozilla_and_ios);
  check Alcotest.int "ios-only extras" 17 (count PD.Ios_only);
  Alcotest.(check bool) "over a hundred named" true (Array.length PD.extras >= 100);
  (* unrecorded extras never validate traffic *)
  Array.iter
    (fun (x : PD.extra_cert) ->
      if x.PD.xc_class = PD.Unrecorded then
        Alcotest.(check bool) ("unrecorded inactive: " ^ x.PD.xc_name) false x.PD.xc_active)
    PD.extras

let test_extras_unique_ids () =
  let ids = Array.to_list PD.extras |> List.map (fun x -> x.PD.xc_id) in
  check Alcotest.int "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      check Alcotest.int ("id width: " ^ id) 8 (String.length id);
      Alcotest.(check bool) ("id hex: " ^ id) true
        (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) id))
    ids

let test_table6_domains () =
  check Alcotest.int "intercepted count" 12 (List.length PD.intercepted_domains);
  check Alcotest.int "whitelisted count" 9 (List.length PD.whitelisted_domains);
  Alcotest.(check bool) "supl whitelisted" true
    (List.mem ("supl.google.com", 7275) PD.whitelisted_domains);
  Alcotest.(check bool) "facebook chat whitelisted" true
    (List.mem ("orcart.facebook.com", 8883) PD.whitelisted_domains);
  Alcotest.(check bool) "gmail intercepted" true
    (List.mem ("gmail.com", 443) PD.intercepted_domains)

let test_rooted_cas_table () =
  check Alcotest.int "five CAs" 5 (List.length PD.rooted_cas);
  check (Alcotest.option Alcotest.int) "crazy house devices" (Some 70)
    (List.assoc_opt PD.freedom_app_ca PD.rooted_cas)

(* --- blueprint --------------------------------------------------------- *)

let test_store_sizes () =
  let u = Lazy.force universe in
  List.iter
    (fun v ->
      check Alcotest.int
        ("AOSP " ^ PD.version_to_string v)
        (PD.aosp_store_size v)
        (Rs.cardinal (u.BP.aosp v)))
    PD.android_versions;
  check Alcotest.int "Mozilla" PD.mozilla_store_size (Rs.cardinal u.BP.mozilla);
  check Alcotest.int "iOS7" PD.ios7_store_size (Rs.cardinal u.BP.ios7)

let test_version_monotonicity () =
  let u = Lazy.force universe in
  (* each release only adds certificates (§2) *)
  let pairs = [ (PD.V4_1, PD.V4_2); (PD.V4_2, PD.V4_3); (PD.V4_3, PD.V4_4) ] in
  List.iter
    (fun (older, newer) ->
      let additions, missing = Rs.diff (u.BP.aosp older) (u.BP.aosp newer) in
      check Alcotest.int
        (PD.version_to_string older ^ " subset of " ^ PD.version_to_string newer)
        0 (List.length additions);
      Alcotest.(check bool) "newer adds" true (List.length missing > 0))
    pairs

let test_shared_and_byte_identical () =
  let u = Lazy.force universe in
  let aosp44 = Rs.certs (u.BP.aosp PD.V4_4) in
  let equivalent = List.filter (Rs.mem u.BP.mozilla) aosp44 in
  check Alcotest.int "equivalence overlap" PD.aosp44_mozilla_shared
    (List.length equivalent);
  let moz_bytes =
    Rs.certs u.BP.mozilla |> List.map C.byte_identity |> List.sort_uniq compare
  in
  let byte_identical =
    aosp44 |> List.filter (fun c -> List.mem (C.byte_identity c) moz_bytes)
  in
  (* §2: 117 of AOSP 4.4's 150 are byte-identical in Mozilla's store *)
  check Alcotest.int "byte-identical overlap" 117 (List.length byte_identical)

let test_expired_aosp_root () =
  let u = Lazy.force universe in
  let expired =
    Rs.certs (u.BP.aosp PD.V4_4)
    |> List.filter (fun c -> not (C.valid_at c Ts.paper_epoch))
  in
  (* §2: exactly one AOSP root (Firmaprofesional) expired in Oct 2013 *)
  check Alcotest.int "one expired root" 1 (List.length expired);
  match expired with
  | [ c ] ->
      let y, m, _, _, _, _ = Ts.to_civil c.C.not_after in
      check Alcotest.int "expired year" 2013 y;
      check Alcotest.int "expired month" 10 m
  | _ -> ()

let test_roots_all_self_signed () =
  let u = Lazy.force universe in
  Array.iter
    (fun (r : BP.root) ->
      Alcotest.(check bool)
        ("self-signed: " ^ r.BP.display_name)
        true
        (C.is_self_signed r.BP.authority.Authority.certificate))
    u.BP.roots

let test_traffic_weights () =
  let u = Lazy.force universe in
  let root_mass =
    Array.fold_left (fun acc (r : BP.root) -> acc +. r.BP.traffic_weight) 0.0 u.BP.roots
  in
  let private_mass =
    Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 u.BP.private_cas
  in
  check (Alcotest.float 1e-9) "mass sums to 1" 1.0 (root_mass +. private_mass);
  Array.iter
    (fun (r : BP.root) ->
      Alcotest.(check bool) "non-negative" true (r.BP.traffic_weight >= 0.0))
    u.BP.roots;
  (* extras marked active carry weight; inactive carry none *)
  Array.iter
    (fun (r : BP.root) ->
      match r.BP.extra with
      | Some x ->
          Alcotest.(check bool)
            ("weight matches activity: " ^ x.PD.xc_name)
            x.PD.xc_active (r.BP.traffic_weight > 0.0)
      | None -> ())
    u.BP.roots

let test_category_populations () =
  let u = Lazy.force universe in
  let size label = List.length (BP.store_of_category u label) in
  check Alcotest.int "shared" 130 (size "AOSP 4.4 and Mozilla root certs");
  check Alcotest.int "aosp41" 139 (size "AOSP 4.1 certs");
  check Alcotest.int "aosp44" 150 (size "AOSP 4.4 certs");
  check Alcotest.int "mozilla" 153 (size "Mozilla root store certs");
  check Alcotest.int "ios" 227 (size "iOS 7 root store certs");
  check Alcotest.int "extras on mozilla" 16 (size "Non AOSP root certs found on Mozilla's");
  Alcotest.check_raises "unknown label"
    (Invalid_argument "Blueprint.store_of_category: unknown label nope") (fun () ->
      ignore (BP.store_of_category u "nope"))

let test_extra_index () =
  let u = Lazy.force universe in
  check Alcotest.int "index covers extras" (Array.length PD.extras)
    (Hashtbl.length u.BP.extra_by_id);
  let dod = Hashtbl.find u.BP.extra_by_id "b530fe64" in
  check (Alcotest.option Alcotest.string) "dod dn"
    (Some "CN=DoD CLASS 3 Root CA,OU=PKI,OU=DoD,O=U.S. Government,C=US")
    (Some (Tangled_x509.Dn.to_string dod.BP.authority.Authority.certificate.C.subject))

let test_interceptor_untrusted () =
  let u = Lazy.force universe in
  let cert = u.BP.interceptor.Authority.certificate in
  Alcotest.(check bool) "not in AOSP" false (Rs.mem (u.BP.aosp PD.V4_4) cert);
  Alcotest.(check bool) "not in Mozilla" false (Rs.mem u.BP.mozilla cert);
  Alcotest.(check bool) "not in iOS" false (Rs.mem u.BP.ios7 cert)

let test_determinism () =
  (* two builds from the same seed give byte-identical stores; different
     seeds differ.  384 bits is the smallest size whose signatures can
     hold the SHA-1 PKCS#1 padding. *)
  let a = BP.build ~key_bits:384 ~seed:9 () in
  let b = BP.build ~key_bits:384 ~seed:9 () in
  let c = BP.build ~key_bits:384 ~seed:10 () in
  let fingerprint (u : BP.t) =
    Rs.certs (u.BP.aosp PD.V4_4) |> List.map C.byte_identity |> String.concat ""
  in
  check Alcotest.string "same seed identical" (fingerprint a) (fingerprint b);
  Alcotest.(check bool) "different seed differs" true (fingerprint a <> fingerprint c)

let test_find_root_by_name () =
  let u = Lazy.force universe in
  (match BP.find_root_by_name u "Motorola FOTA Root CA" with
  | Some r -> Alcotest.(check bool) "found" true (r.BP.extra <> None)
  | None -> Alcotest.fail "FOTA root missing");
  check Alcotest.bool "missing name" true (BP.find_root_by_name u "Nonexistent CA" = None)

let suite =
  [
    ("store size constants", `Quick, test_store_size_constants);
    ("version deltas sum to Table 1", `Quick, test_version_deltas_sum);
    ("Mozilla composition identity", `Quick, test_mozilla_composition);
    ("extras class quotas", `Quick, test_extras_class_quota);
    ("extras ids unique", `Quick, test_extras_unique_ids);
    ("Table 6 domain lists", `Quick, test_table6_domains);
    ("Table 5 rooted CAs", `Quick, test_rooted_cas_table);
    ("store sizes (Table 1)", `Quick, test_store_sizes);
    ("version monotonicity", `Quick, test_version_monotonicity);
    ("130 shared / 117 byte-identical", `Quick, test_shared_and_byte_identical);
    ("expired Firmaprofesional root", `Quick, test_expired_aosp_root);
    ("roots self-signed", `Quick, test_roots_all_self_signed);
    ("traffic weights", `Quick, test_traffic_weights);
    ("Table 4 category populations", `Quick, test_category_populations);
    ("extras index", `Quick, test_extra_index);
    ("interceptor untrusted", `Quick, test_interceptor_untrusted);
    ("determinism", `Slow, test_determinism);
    ("find root by name", `Quick, test_find_root_by_name);
  ]
