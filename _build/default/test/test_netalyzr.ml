(* Tests for the Netalyzr collection layer, over the shared quick world. *)

module PD = Tangled_pki.Paper_data
module Net = Tangled_netalyzr.Netalyzr
module Pop = Tangled_device.Population
module Pipeline = Tangled_core.Pipeline

let check = Alcotest.check

let world = lazy (Lazy.force Pipeline.quick)
let dataset () = (Lazy.force world).Pipeline.dataset

let test_session_count_matches_population () =
  let d = dataset () in
  check Alcotest.int "sessions" (Pop.total_sessions d.Net.population)
    (Net.total_sessions d)

let test_extended_fraction () =
  let d = dataset () in
  let f = Net.extended_fraction d in
  (* paper: 39% of sessions carry additional certificates *)
  Alcotest.(check bool) (Printf.sprintf "extended %.2f near 0.39" f) true
    (f > 0.30 && f < 0.50)

let test_rooted_fraction () =
  let d = dataset () in
  let f = Net.rooted_fraction d in
  Alcotest.(check bool) (Printf.sprintf "rooted %.2f near 0.24" f) true
    (f > 0.18 && f < 0.30)

let test_unique_roots_scale () =
  let d = dataset () in
  let n = Net.unique_root_keys d in
  (* the paper observed 314 unique roots across all sessions; our world
     holds ~150 AOSP + ~100 extras + user/app singletons *)
  Alcotest.(check bool) (Printf.sprintf "%d unique roots plausible" n) true
    (n > 150 && n < 330)

let test_identity_tuples () =
  let d = dataset () in
  let estimated = Net.estimated_handsets d in
  let actual = Array.length d.Net.population.Pop.handsets in
  (* tuple-based estimation may merge a few devices but not explode *)
  Alcotest.(check bool)
    (Printf.sprintf "estimate %d vs actual %d" estimated actual)
    true
    (estimated <= actual && estimated > actual * 8 / 10)

let test_store_measurement_consistency () =
  let d = dataset () in
  Array.iter
    (fun (s : Net.session) ->
      (* additional + aosp_present = store size *)
      check Alcotest.int "store size decomposition"
        (List.length s.Net.store_keys)
        (s.Net.aosp_present + s.Net.additional);
      Alcotest.(check bool) "missing bounded" true (s.Net.missing >= 0))
    d.Net.sessions

let test_additional_ids_recognised () =
  let d = dataset () in
  let u = d.Net.population.Pop.universe in
  Array.iter
    (fun (s : Net.session) ->
      List.iter
        (fun id ->
          Alcotest.(check bool) ("known id " ^ id) true
            (Hashtbl.mem u.Tangled_pki.Blueprint.extra_by_id id))
        s.Net.additional_ids)
    d.Net.sessions

let test_probe_sampling () =
  let d = dataset () in
  let probed =
    Array.to_list d.Net.sessions
    |> List.filter (fun (s : Net.session) -> s.Net.probes <> [])
  in
  (* ~5% of sessions probe, plus the proxied device's sessions *)
  let f = float_of_int (List.length probed) /. float_of_int (Net.total_sessions d) in
  Alcotest.(check bool) (Printf.sprintf "probe rate %.3f" f) true (f > 0.005 && f < 0.12)

let test_interception_detected () =
  let d = dataset () in
  let intercepted = Net.intercepted_sessions d in
  Alcotest.(check bool) "at least one intercepted session" true (intercepted <> []);
  (* every intercepted session comes from the single proxied handset *)
  let handsets =
    intercepted |> List.map (fun (s : Net.session) -> s.Net.handset_id)
    |> List.sort_uniq compare
  in
  check Alcotest.int "one proxied handset" 1 (List.length handsets)

let test_rooted_app_certs_only_on_rooted () =
  let d = dataset () in
  Array.iter
    (fun (s : Net.session) ->
      if s.Net.app_added <> [] then
        Alcotest.(check bool) "app certs imply rooted" true s.Net.rooted)
    d.Net.sessions

let suite =
  [
    ("session count", `Quick, test_session_count_matches_population);
    ("extended fraction (Fig. 1)", `Quick, test_extended_fraction);
    ("rooted fraction (§6)", `Quick, test_rooted_fraction);
    ("unique roots scale (§4.1)", `Quick, test_unique_roots_scale);
    ("identity tuples", `Quick, test_identity_tuples);
    ("store measurement consistency", `Quick, test_store_measurement_consistency);
    ("additional ids recognised", `Quick, test_additional_ids_recognised);
    ("probe sampling", `Quick, test_probe_sampling);
    ("interception detected (§7)", `Quick, test_interception_detected);
    ("app certs only on rooted", `Quick, test_rooted_app_certs_only_on_rooted);
  ]
