(* Tests for the text-plot rendering and the remaining util surface. *)

open Tangled_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- scatter ----------------------------------------------------------- *)

let test_scatter_empty () =
  let s = Text_plot.scatter [||] in
  Alcotest.(check bool) "frame drawn" true (String.length s > 0);
  Alcotest.(check bool) "axis present" true (String.contains s '+')

let test_scatter_glyphs () =
  let pts = [| (0.0, 0.0, 'a'); (1.0, 1.0, 'b') |] in
  let s = Text_plot.scatter ~width:20 ~height:5 pts in
  Alcotest.(check bool) "a plotted" true (String.contains s 'a');
  Alcotest.(check bool) "b plotted" true (String.contains s 'b')

let test_scatter_labels () =
  let s =
    Text_plot.scatter ~title:"TITLE" ~xlabel:"XAXIS" ~ylabel:"YAXIS"
      [| (0.0, 0.0, '*') |]
  in
  List.iter
    (fun needle ->
      let found =
        let n = String.length needle and h = String.length s in
        let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (needle ^ " present") true found)
    [ "TITLE"; "XAXIS"; "YAXIS" ]

let test_scatter_single_point () =
  (* degenerate bounds (one point) must not divide by zero *)
  let s = Text_plot.scatter [| (5.0, 5.0, 'x') |] in
  Alcotest.(check bool) "renders" true (String.contains s 'x')

(* --- ecdf lines ---------------------------------------------------------- *)

let test_ecdf_lines () =
  let series =
    [
      ("low", 'l', [| (1.0, 0.5); (10.0, 1.0) |]);
      ("high", 'h', [| (100.0, 0.3); (1000.0, 1.0) |]);
    ]
  in
  let s = Text_plot.ecdf_lines ~log_x:true series in
  Alcotest.(check bool) "legend low" true (String.contains s 'l');
  Alcotest.(check bool) "legend high" true (String.contains s 'h');
  (* zero x with log scale must not crash *)
  let s2 = Text_plot.ecdf_lines ~log_x:true [ ("z", 'z', [| (0.0, 0.5); (5.0, 1.0) |]) ] in
  Alcotest.(check bool) "zero x tolerated" true (String.length s2 > 0)

let test_ecdf_lines_empty () =
  let s = Text_plot.ecdf_lines [] in
  Alcotest.(check bool) "empty tolerated" true (String.length s > 0)

(* --- histogram ------------------------------------------------------------ *)

let test_histogram () =
  let s = Text_plot.histogram [ ("alpha", 10); ("beta", 5); ("gamma", 0) ] in
  Alcotest.(check bool) "labels present" true (String.contains s 'a');
  (* the largest bar is the widest *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let bar_width line =
    String.to_seq line |> Seq.filter (fun c -> c = '#') |> Seq.length
  in
  match lines with
  | a :: b :: c :: _ ->
      Alcotest.(check bool) "alpha widest" true (bar_width a > bar_width b);
      check Alcotest.int "gamma empty" 0 (bar_width c)
  | _ -> Alcotest.fail "unexpected histogram shape"

(* --- prng leftovers --------------------------------------------------------- *)

let test_prng_float_bounds () =
  let rng = Prng.create 51 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_bytes () =
  let rng = Prng.create 52 in
  let s = Prng.bytes rng 64 in
  check Alcotest.int "length" 64 (String.length s);
  let s2 = Prng.bytes rng 64 in
  Alcotest.(check bool) "stream advances" true (s <> s2)

let test_prng_shuffle_permutes () =
  let rng = Prng.create 53 in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Prng.shuffle rng b;
  Alcotest.(check bool) "order changed" true (a <> b);
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check bool) "same multiset" true (a = sorted)

let prop_choose_member =
  QCheck.Test.make ~name:"choose returns a member" ~count:200
    QCheck.(pair small_int (array_of_size QCheck.Gen.(int_range 1 20) small_int))
    (fun (seed, a) ->
      let rng = Prng.create seed in
      Array.exists (( = ) (Prng.choose rng a)) a)

(* --- timestamp arithmetic ------------------------------------------------------ *)

let test_add_days () =
  let t = Timestamp.of_date 2014 4 1 in
  let y, m, d, _, _, _ = Timestamp.to_civil (Timestamp.add_days t 30) in
  check Alcotest.int "year" 2014 y;
  check Alcotest.int "month" 5 m;
  check Alcotest.int "day" 1 d;
  let y', m', d', _, _, _ = Timestamp.to_civil (Timestamp.add_days t (-1)) in
  Alcotest.(check bool) "backwards" true ((y', m', d') = (2014, 3, 31))

let test_paper_epochs () =
  check Alcotest.string "paper epoch" "2014-04-01 00:00:00 UTC"
    (Timestamp.to_utc_string Timestamp.paper_epoch);
  check Alcotest.string "notary start" "2012-02-01 00:00:00 UTC"
    (Timestamp.to_utc_string Timestamp.notary_start)

let suite =
  [
    ("scatter empty", `Quick, test_scatter_empty);
    ("scatter glyphs", `Quick, test_scatter_glyphs);
    ("scatter labels", `Quick, test_scatter_labels);
    ("scatter single point", `Quick, test_scatter_single_point);
    ("ecdf lines", `Quick, test_ecdf_lines);
    ("ecdf lines empty", `Quick, test_ecdf_lines_empty);
    ("histogram", `Quick, test_histogram);
    ("prng float bounds", `Quick, test_prng_float_bounds);
    ("prng bytes", `Quick, test_prng_bytes);
    ("prng shuffle permutes", `Quick, test_prng_shuffle_permutes);
    ("timestamp add_days", `Quick, test_add_days);
    ("paper epochs", `Quick, test_paper_epochs);
    qtest prop_choose_member;
  ]
