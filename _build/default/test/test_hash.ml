(* Tests for the digest substrate: published test vectors plus
   structural properties. *)

open Tangled_hash

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* FIPS 180-4 / RFC 1321 reference vectors. *)

let test_sha256_vectors () =
  check Alcotest.string "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  check Alcotest.string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  check Alcotest.string "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check Alcotest.string "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_sha1_vectors () =
  check Alcotest.string "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Sha1.hex "");
  check Alcotest.string "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (Sha1.hex "abc");
  check Alcotest.string "two blocks" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Sha1.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check Alcotest.string "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex (String.make 1_000_000 'a'))

let test_md5_vectors () =
  check Alcotest.string "empty" "d41d8cd98f00b204e9800998ecf8427e" (Md5.hex "");
  check Alcotest.string "a" "0cc175b9c0f1b6a831c399e269772661" (Md5.hex "a");
  check Alcotest.string "abc" "900150983cd24fb0d6963f7d28e17f72" (Md5.hex "abc");
  check Alcotest.string "message digest" "f96b697d7cb7938d525a2f31aaf161d0"
    (Md5.hex "message digest");
  check Alcotest.string "alphabet" "c3fcd3d76192e4007dfb496cca67e13b"
    (Md5.hex "abcdefghijklmnopqrstuvwxyz");
  check Alcotest.string "digits"
    "57edf4a22be3c955ac49da2e2107b67a"
    (Md5.hex "12345678901234567890123456789012345678901234567890123456789012345678901234567890")

(* boundary lengths around the padding break at 55/56/64 bytes *)
let test_padding_boundaries () =
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      check Alcotest.int "sha256 size" 32 (String.length (Sha256.digest s));
      check Alcotest.int "sha1 size" 20 (String.length (Sha1.digest s));
      check Alcotest.int "md5 size" 16 (String.length (Md5.digest s)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let test_digest_kind () =
  check Alcotest.int "md5 size" 16 (Digest_kind.size Digest_kind.MD5);
  check Alcotest.int "sha1 size" 20 (Digest_kind.size Digest_kind.SHA1);
  check Alcotest.int "sha256 size" 32 (Digest_kind.size Digest_kind.SHA256);
  List.iter
    (fun dk ->
      check (Alcotest.option (Alcotest.testable Digest_kind.pp ( = )))
        "name roundtrip" (Some dk)
        (Digest_kind.of_name (Digest_kind.name dk)))
    Digest_kind.all;
  check (Alcotest.option (Alcotest.testable Digest_kind.pp ( = ))) "unknown" None
    (Digest_kind.of_name "sha512")

let prop_deterministic =
  QCheck.Test.make ~name:"digests deterministic" ~count:100 QCheck.string (fun s ->
      Sha256.digest s = Sha256.digest s
      && Sha1.digest s = Sha1.digest s
      && Md5.digest s = Md5.digest s)

let prop_sizes =
  QCheck.Test.make ~name:"digest sizes fixed" ~count:100 QCheck.string (fun s ->
      String.length (Sha256.digest s) = 32
      && String.length (Sha1.digest s) = 20
      && String.length (Md5.digest s) = 16)

let prop_sensitivity =
  QCheck.Test.make ~name:"one byte flips the digest" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_range 1 100))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
      let s' = Bytes.to_string b in
      Sha256.digest s <> Sha256.digest s')

let suite =
  [
    ("sha256 vectors", `Quick, test_sha256_vectors);
    ("sha1 vectors", `Quick, test_sha1_vectors);
    ("md5 vectors", `Quick, test_md5_vectors);
    ("padding boundaries", `Quick, test_padding_boundaries);
    ("digest kind dispatch", `Quick, test_digest_kind);
    qtest prop_deterministic;
    qtest prop_sizes;
    qtest prop_sensitivity;
  ]
