(* Tests for the X.509 layer: DNs, certificates, PEM, issuance. *)

module Dn = Tangled_x509.Dn
module C = Tangled_x509.Certificate
module Pem = Tangled_x509.Pem
module Authority = Tangled_x509.Authority
module Der = Tangled_asn1.Der
module B = Tangled_numeric.Bigint
module Dk = Tangled_hash.Digest_kind
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* Shared fixtures (built once; 512-bit keys for SHA-256 headroom). *)
let rng = Prng.create 42
let root = lazy (Authority.self_signed rng (Dn.make ~o:"T" ~c:"US" "Test Root"))
let inter =
  lazy (Authority.issue_intermediate rng ~parent:(Lazy.force root) (Dn.make ~o:"T" "Test Inter"))
let leaf =
  lazy
    (Authority.issue_leaf rng ~parent:(Lazy.force inter)
       ~dns_names:[ "a.example"; "b.example" ] (Dn.make "a.example"))

(* --- dn -------------------------------------------------------------- *)

let test_dn_render () =
  let dn = Dn.make ~c:"US" ~o:"U.S. Government" ~ou:"DoD" "DoD CLASS 3 Root CA" in
  check Alcotest.string "rfc4514 order"
    "CN=DoD CLASS 3 Root CA,OU=DoD,O=U.S. Government,C=US" (Dn.to_string dn);
  check (Alcotest.option Alcotest.string) "cn" (Some "DoD CLASS 3 Root CA")
    (Dn.common_name dn);
  check (Alcotest.option Alcotest.string) "o" (Some "U.S. Government")
    (Dn.organization dn);
  check (Alcotest.option Alcotest.string) "c" (Some "US") (Dn.country dn)

let test_dn_der_roundtrip () =
  let dn =
    Dn.make ~c:"DE" ~st:"Bavaria" ~l:"Munich" ~o:"Org" ~ou:"Unit"
      ~email:"a@example.com" "Common Name"
  in
  match Dn.of_der (Dn.to_der dn) with
  | Some dn' -> Alcotest.(check bool) "roundtrip" true (Dn.equal dn dn')
  | None -> Alcotest.fail "roundtrip failed"

let test_dn_utf8 () =
  (* non-printable characters force a UTF8String encoding *)
  let dn = Dn.make "Türktrust Elektronik" in
  match Dn.of_der (Dn.to_der dn) with
  | Some dn' -> Alcotest.(check bool) "utf8 roundtrip" true (Dn.equal dn dn')
  | None -> Alcotest.fail "utf8 roundtrip failed"

(* --- certificates ------------------------------------------------------ *)

let test_cert_roundtrip () =
  let cert = Lazy.force leaf in
  match C.decode (C.encode cert) with
  | Ok cert' ->
      Alcotest.(check bool) "subject" true (Dn.equal cert.C.subject cert'.C.subject);
      Alcotest.(check bool) "issuer" true (Dn.equal cert.C.issuer cert'.C.issuer);
      check Alcotest.int "version" cert.C.version cert'.C.version;
      Alcotest.(check bool) "serial" true (B.equal cert.C.serial cert'.C.serial);
      check Alcotest.string "raw preserved" (C.encode cert) (C.encode cert');
      Alcotest.(check bool) "SANs" true
        (cert'.C.extensions.C.subject_alt_names = [ "a.example"; "b.example" ])
  | Error m -> Alcotest.fail m

let test_cert_decode_garbage () =
  (match C.decode "garbage" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match C.decode (Der.encode (Der.Sequence [ Der.Null ])) with
  | Ok _ -> Alcotest.fail "wrong shape accepted"
  | Error _ -> ()

let test_cert_predicates () =
  let root = Lazy.force root and inter = Lazy.force inter and leaf = Lazy.force leaf in
  Alcotest.(check bool) "root self-signed" true (C.is_self_signed root.Authority.certificate);
  Alcotest.(check bool) "root is CA" true (C.is_ca root.Authority.certificate);
  Alcotest.(check bool) "inter is CA" true (C.is_ca inter.Authority.certificate);
  Alcotest.(check bool) "leaf not CA" false (C.is_ca leaf);
  Alcotest.(check bool) "leaf not self-signed" false (C.is_self_signed leaf);
  Alcotest.(check bool) "leaf allows server auth" true (C.allows_server_auth leaf)

let test_cert_signature_verification () =
  let root = Lazy.force root and inter = Lazy.force inter and leaf = Lazy.force leaf in
  Alcotest.(check bool) "leaf by inter" true
    (C.verify_signature leaf ~issuer_key:inter.Authority.key.Tangled_crypto.Rsa.pub);
  Alcotest.(check bool) "inter by root" true
    (C.verify_signature inter.Authority.certificate
       ~issuer_key:root.Authority.key.Tangled_crypto.Rsa.pub);
  Alcotest.(check bool) "leaf not by root" false
    (C.verify_signature leaf ~issuer_key:root.Authority.key.Tangled_crypto.Rsa.pub)

let test_validity_window () =
  let cert = Lazy.force leaf in
  Alcotest.(check bool) "valid inside" true (C.valid_at cert (Ts.of_date 2014 4 1));
  Alcotest.(check bool) "invalid before" false (C.valid_at cert (Ts.of_date 1999 1 1));
  Alcotest.(check bool) "invalid after" false (C.valid_at cert (Ts.of_date 2031 1 1));
  Alcotest.(check bool) "boundary not_before" true (C.valid_at cert cert.C.not_before);
  Alcotest.(check bool) "boundary not_after" true (C.valid_at cert cert.C.not_after)

let test_identities () =
  let root = Lazy.force root in
  let cert = root.Authority.certificate in
  (* equivalence survives re-issuance with the same key; byte identity
     does not (§4.2) *)
  let renewed = Authority.renew ~serial:(B.of_int 999) root in
  let cert' = renewed.Authority.certificate in
  check Alcotest.string "equivalence equal" (C.equivalence_key cert) (C.equivalence_key cert');
  Alcotest.(check bool) "bytes differ" true (C.byte_identity cert <> C.byte_identity cert');
  check Alcotest.int "hash32 width" 8 (String.length (C.subject_hash32 cert));
  check Alcotest.string "hash32 stable" (C.subject_hash32 cert) (C.subject_hash32 cert');
  check Alcotest.int "sha256 fingerprint" 32 (String.length (C.fingerprint cert));
  check Alcotest.int "sha1 fingerprint" 20 (String.length (C.fingerprint ~alg:Dk.SHA1 cert))

let test_v1_certificate () =
  let rng = Prng.create 77 in
  let v1 = Authority.self_signed ~version:1 rng (Dn.make "Legacy Root") in
  let cert = v1.Authority.certificate in
  check Alcotest.int "version" 1 cert.C.version;
  Alcotest.(check bool) "no extensions" true (cert.C.extensions = C.no_extensions);
  Alcotest.(check bool) "legacy CA heuristic" true (C.is_ca cert);
  match C.decode (C.encode cert) with
  | Ok cert' -> check Alcotest.int "v1 roundtrip" 1 cert'.C.version
  | Error m -> Alcotest.fail m

let test_expired_issuance () =
  let rng = Prng.create 78 in
  let expired =
    Authority.self_signed
      ~not_before:(Ts.of_date 2001 10 24)
      ~not_after:(Ts.of_date 2013 10 24)
      rng (Dn.make "Firmaprofesional-like")
  in
  Alcotest.(check bool) "expired at paper epoch" false
    (C.valid_at expired.Authority.certificate Ts.paper_epoch)

let test_key_usage_roundtrip () =
  let cert = Lazy.force leaf in
  match cert.C.extensions.C.key_usage with
  | Some kus ->
      Alcotest.(check bool) "digitalSignature" true (List.mem C.Digital_signature kus);
      Alcotest.(check bool) "keyEncipherment" true (List.mem C.Key_encipherment kus);
      Alcotest.(check bool) "no certSign" false (List.mem C.Key_cert_sign kus)
  | None -> Alcotest.fail "leaf should carry keyUsage"

let test_eku_roundtrip () =
  let rng = Prng.create 79 in
  let parent = Lazy.force inter in
  let leaf =
    Authority.issue_leaf rng ~parent ~ekus:[ C.Code_signing; C.Time_stamping ]
      ~dns_names:[] (Dn.make "signer")
  in
  (match C.decode (C.encode leaf) with
  | Ok c ->
      Alcotest.(check bool) "ekus preserved" true
        (c.C.extensions.C.ext_key_usage = Some [ C.Code_signing; C.Time_stamping ]);
      Alcotest.(check bool) "no server auth" false (C.allows_server_auth c)
  | Error m -> Alcotest.fail m)

(* --- pem ------------------------------------------------------------------ *)

let test_base64 () =
  check Alcotest.string "empty" "" (Pem.base64_encode "");
  check Alcotest.string "f" "Zg==" (Pem.base64_encode "f");
  check Alcotest.string "fo" "Zm8=" (Pem.base64_encode "fo");
  check Alcotest.string "foo" "Zm9v" (Pem.base64_encode "foo");
  check Alcotest.string "foobar" "Zm9vYmFy" (Pem.base64_encode "foobar");
  check
    (Alcotest.result Alcotest.string Alcotest.string)
    "decode" (Ok "foobar")
    (Pem.base64_decode "Zm9vYmFy");
  check
    (Alcotest.result Alcotest.string Alcotest.string)
    "decode with newlines" (Ok "foobar")
    (Pem.base64_decode "Zm9v\nYmFy");
  (match Pem.base64_decode "Zm9v!!" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid character accepted")

let prop_base64_roundtrip =
  QCheck.Test.make ~name:"base64 roundtrip" ~count:300 QCheck.string (fun s ->
      Pem.base64_decode (Pem.base64_encode s) = Ok s)

let test_pem_certificate () =
  let cert = (Lazy.force root).Authority.certificate in
  let pem = Pem.encode_certificate cert in
  Alcotest.(check bool) "header" true
    (String.length pem > 27 && String.sub pem 0 27 = "-----BEGIN CERTIFICATE-----");
  match Pem.decode_certificate pem with
  | Ok cert' -> check Alcotest.string "roundtrip" (C.encode cert) (C.encode cert')
  | Error m -> Alcotest.fail m

let test_pem_multi () =
  let a = (Lazy.force root).Authority.certificate in
  let b = (Lazy.force inter).Authority.certificate in
  let blob = Pem.encode_certificate a ^ Pem.encode_certificate b in
  match Pem.decode_all blob with
  | Ok blocks -> check Alcotest.int "two blocks" 2 (List.length blocks)
  | Error m -> Alcotest.fail m

let test_pem_wrong_label () =
  let pem = Pem.encode ~label:"PRIVATE KEY" "xxx" in
  match Pem.decode_certificate pem with
  | Ok _ -> Alcotest.fail "wrong label accepted"
  | Error _ -> ()

let suite =
  [
    ("dn rendering", `Quick, test_dn_render);
    ("dn DER roundtrip", `Quick, test_dn_der_roundtrip);
    ("dn utf8", `Quick, test_dn_utf8);
    ("certificate roundtrip", `Quick, test_cert_roundtrip);
    ("certificate garbage rejection", `Quick, test_cert_decode_garbage);
    ("certificate predicates", `Quick, test_cert_predicates);
    ("signature verification", `Quick, test_cert_signature_verification);
    ("validity window", `Quick, test_validity_window);
    ("equivalence vs byte identity", `Quick, test_identities);
    ("v1 legacy certificates", `Quick, test_v1_certificate);
    ("expired issuance", `Quick, test_expired_issuance);
    ("key usage roundtrip", `Quick, test_key_usage_roundtrip);
    ("EKU roundtrip", `Quick, test_eku_roundtrip);
    ("base64 vectors", `Quick, test_base64);
    ("pem certificate roundtrip", `Quick, test_pem_certificate);
    ("pem multiple blocks", `Quick, test_pem_multi);
    ("pem wrong label", `Quick, test_pem_wrong_label);
    qtest prop_base64_roundtrip;
  ]
