(* Robustness fuzzing: the parsers must return errors, never crash, on
   arbitrary and on mutated-valid input. *)

module Der = Tangled_asn1.Der
module C = Tangled_x509.Certificate
module Pem = Tangled_x509.Pem
module Dn = Tangled_x509.Dn
module Authority = Tangled_x509.Authority
module Chain = Tangled_validation.Chain
module Rs = Tangled_store.Root_store
module Prng = Tangled_util.Prng
module Ts = Tangled_util.Timestamp

let qtest = QCheck_alcotest.to_alcotest

let prop_der_decode_total =
  QCheck.Test.make ~name:"Der.decode never raises" ~count:2000 QCheck.string (fun s ->
      match Der.decode s with Ok _ | Error _ -> true)

let prop_cert_decode_total =
  QCheck.Test.make ~name:"Certificate.decode never raises" ~count:1000 QCheck.string
    (fun s -> match C.decode s with Ok _ | Error _ -> true)

let prop_pem_decode_total =
  QCheck.Test.make ~name:"Pem.decode_all never raises" ~count:1000 QCheck.string
    (fun s -> match Pem.decode_all s with Ok _ | Error _ -> true)

let prop_base64_decode_total =
  QCheck.Test.make ~name:"base64 decode never raises" ~count:1000 QCheck.string
    (fun s -> match Pem.base64_decode s with Ok _ | Error _ -> true)

(* Mutation fuzzing: flip one byte of a valid certificate; the decoder
   must either reject it or produce a certificate whose signature no
   longer verifies (the bytes matter). *)

let fixture =
  lazy
    (let rng = Prng.create 4242 in
     let root = Authority.self_signed ~bits:512 rng (Dn.make "Fuzz Root") in
     let leaf =
       Authority.issue_leaf ~bits:512 rng ~parent:root ~dns_names:[ "f.example" ]
         (Dn.make "f.example")
     in
     (root, leaf))

let prop_mutated_cert_rejected_or_unverifiable =
  QCheck.Test.make ~name:"bit-flipped certificates never verify" ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (pos_seed, bit) ->
      let root, leaf = Lazy.force fixture in
      let raw = Bytes.of_string (C.encode leaf) in
      let pos = pos_seed mod Bytes.length raw in
      Bytes.set raw pos
        (Char.chr (Char.code (Bytes.get raw pos) lxor (1 lsl (bit mod 8))));
      let mutated = Bytes.to_string raw in
      QCheck.assume (mutated <> C.encode leaf);
      match C.decode mutated with
      | Error _ -> true
      | Ok cert ->
          (* parsed despite the flip: the signature must now fail, or the
             flip landed outside the signed region entirely and produced
             an identical TBS + signature (impossible since bytes differ
             somewhere inside the TLV tree) *)
          not
            (C.verify_signature cert
               ~issuer_key:root.Authority.key.Tangled_crypto.Rsa.pub)
          || String.equal (C.byte_identity cert) (C.byte_identity leaf))

(* Random chains never validate against an empty or unrelated store,
   and Chain.validate is total. *)
let prop_validate_total =
  QCheck.Test.make ~name:"Chain.validate total on junk pools" ~count:200
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Prng.create seed in
      let root, leaf = Lazy.force fixture in
      let pool =
        List.init (Prng.int rng 3) (fun _ ->
            if Prng.bool rng then leaf else root.Authority.certificate)
      in
      let store = Rs.empty "empty" in
      match (Chain.validate ~now:Ts.paper_epoch ~store (leaf :: pool)).Chain.verdict with
      | Ok _ -> false (* empty store can never anchor *)
      | Error _ -> true)

let suite =
  [
    qtest prop_der_decode_total;
    qtest prop_cert_decode_total;
    qtest prop_pem_decode_total;
    qtest prop_base64_decode_total;
    qtest prop_mutated_cert_rejected_or_unverifiable;
    qtest prop_validate_total;
  ]
