test/test_extensions.ml: Alcotest Array Hashtbl Lazy List Option String Tangled_core Tangled_hash Tangled_netalyzr Tangled_notary Tangled_pki Tangled_store Tangled_tls Tangled_util Tangled_x509
