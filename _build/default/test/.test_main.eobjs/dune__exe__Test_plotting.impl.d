test/test_plotting.ml: Alcotest Array Fun List Prng QCheck QCheck_alcotest Seq String Tangled_util Text_plot Timestamp
