test/test_core.ml: Alcotest Lazy List Printf String Tangled_core Tangled_netalyzr Tangled_pki
