test/test_asn1.ml: Alcotest Char List Option Printf QCheck QCheck_alcotest Result String Tangled_asn1 Tangled_numeric Tangled_util
