test/test_bigint.ml: Alcotest Array QCheck QCheck_alcotest Tangled_numeric Tangled_util
