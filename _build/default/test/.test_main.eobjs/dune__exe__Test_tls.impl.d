test/test_tls.ml: Alcotest Lazy List Option Printf Tangled_pki Tangled_store Tangled_tls Tangled_util Tangled_validation Tangled_x509
