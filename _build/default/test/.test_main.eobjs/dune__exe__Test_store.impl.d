test/test_store.ml: Alcotest Lazy List String Tangled_hash Tangled_store Tangled_util Tangled_x509
