test/test_x509.ml: Alcotest Lazy List QCheck QCheck_alcotest String Tangled_asn1 Tangled_crypto Tangled_hash Tangled_numeric Tangled_util Tangled_x509
