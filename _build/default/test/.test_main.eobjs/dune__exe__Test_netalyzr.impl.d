test/test_netalyzr.ml: Alcotest Array Hashtbl Lazy List Printf Tangled_core Tangled_device Tangled_netalyzr Tangled_pki
