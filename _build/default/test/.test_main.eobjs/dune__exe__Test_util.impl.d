test/test_util.ml: Alcotest Array Csv Format Fun Gen Hex List Prng QCheck QCheck_alcotest Stats String Tangled_util Text_table Timestamp
