test/test_hash.ml: Alcotest Bytes Char Digest_kind List Md5 QCheck QCheck_alcotest Sha1 Sha256 String Tangled_hash
