test/test_persistence.ml: Alcotest Array Filename Fun Lazy List Printf Random Seq String Sys Tangled_core Tangled_netalyzr Tangled_pki Tangled_store Tangled_util Tangled_validation Tangled_x509 Unix
