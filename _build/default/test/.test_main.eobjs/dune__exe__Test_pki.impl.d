test/test_pki.ml: Alcotest Array Hashtbl Lazy List String Tangled_pki Tangled_store Tangled_util Tangled_x509
