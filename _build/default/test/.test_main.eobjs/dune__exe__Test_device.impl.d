test/test_device.ml: Alcotest Array Lazy List Tangled_device Tangled_pki Tangled_store Tangled_util Tangled_x509
