test/test_validation.ml: Alcotest Bytes Char Lazy List Printf Tangled_numeric Tangled_store Tangled_util Tangled_validation Tangled_x509
