test/test_properties.ml: Alcotest Gen Lazy List Printf QCheck QCheck_alcotest String Tangled_asn1 Tangled_crypto Tangled_numeric Tangled_util Tangled_x509
