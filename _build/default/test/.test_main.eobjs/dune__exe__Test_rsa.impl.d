test/test_rsa.ml: Alcotest Bytes Char Lazy List QCheck QCheck_alcotest String Tangled_crypto Tangled_hash Tangled_numeric Tangled_util
