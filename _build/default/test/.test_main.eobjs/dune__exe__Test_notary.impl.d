test/test_notary.ml: Alcotest Array Hashtbl Lazy List Option Printf Tangled_core Tangled_notary Tangled_pki Tangled_store Tangled_util Tangled_x509
