test/test_fuzz.ml: Bytes Char Lazy List QCheck QCheck_alcotest String Tangled_asn1 Tangled_crypto Tangled_store Tangled_util Tangled_validation Tangled_x509
